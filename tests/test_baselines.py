"""Unit tests for the baselines: single-column best-of, uncompressed, and C3."""

import numpy as np
import pytest

from repro.baselines import (
    C3Selector,
    SingleColumnBaseline,
    UncompressedBaseline,
    dfor_size,
    numerical_size,
    one_to_one_size,
)
from repro.core import NonHierarchicalEncoding
from repro.errors import EncodingError


class TestSingleColumnBaseline:
    def test_report_covers_every_column(self, tpch_dates):
        report = SingleColumnBaseline().report(tpch_dates)
        assert set(report.column_sizes) == set(tpch_dates.column_names)
        assert report.total_size == sum(report.column_sizes.values())
        assert report.n_rows == tpch_dates.n_rows

    def test_scheme_choice_is_for_or_dict(self, tpch_dates):
        report = SingleColumnBaseline().report(tpch_dates)
        assert set(report.scheme_names.values()) <= {"for_bitpack", "dictionary"}

    def test_compress_roundtrip(self, tpch_dates):
        relation = SingleColumnBaseline(block_size=8_000).compress(tpch_dates)
        restored = np.concatenate(
            [b.decode_column("l_shipdate") for b in relation]
        )
        assert np.array_equal(restored, tpch_dates.column("l_shipdate"))

    def test_baseline_smaller_than_uncompressed(self, tpch_dates):
        baseline = SingleColumnBaseline().report(tpch_dates).total_size
        raw = tpch_dates.uncompressed_size()
        assert baseline < raw


class TestUncompressedBaseline:
    def test_plain_encoding_used(self, tpch_dates):
        relation = UncompressedBaseline(block_size=8_000).compress(tpch_dates)
        assert relation.block(0).encoding_of("l_shipdate") == "plain"

    def test_sizes_match_logical_width(self, tpch_dates):
        sizes = UncompressedBaseline().report_sizes(tpch_dates)
        assert sizes["l_shipdate"] == 4 * tpch_dates.n_rows

    def test_roundtrip(self, tpch_dates):
        relation = UncompressedBaseline(block_size=8_000).compress(tpch_dates)
        restored = np.concatenate(
            [b.decode_column("l_receiptdate") for b in relation]
        )
        assert np.array_equal(restored, tpch_dates.column("l_receiptdate"))


class TestC3Schemes:
    def test_dfor_close_to_corra_on_dates(self, tpch_dates):
        ship = tpch_dates.column("l_shipdate")
        receipt = tpch_dates.column("l_receiptdate")
        corra = NonHierarchicalEncoding().encode(receipt, ship, "ship").size_bytes
        c3 = dfor_size(receipt, ship)
        # DFOR pays per-mini-block metadata but packs the same differences.
        assert c3 == pytest.approx(corra, rel=0.1)

    def test_dfor_length_mismatch(self):
        with pytest.raises(EncodingError):
            dfor_size(np.arange(3), np.arange(4))

    def test_numerical_captures_affine_correlation(self, rng):
        reference = rng.integers(0, 10_000, size=5_000, dtype=np.int64)
        target = 3 * reference + 17 + rng.integers(0, 4, size=5_000, dtype=np.int64)
        affine = numerical_size(target, reference)
        additive = dfor_size(target, reference)
        assert affine < additive

    def test_numerical_constant_reference(self):
        reference = np.full(100, 5, dtype=np.int64)
        target = np.full(100, 42, dtype=np.int64)
        assert numerical_size(target, reference) > 0

    def test_one_to_one_perfect_dependency(self):
        reference = ["a", "b", "c"] * 100
        target = np.array([1, 2, 3] * 100, dtype=np.int64)
        size = one_to_one_size(target, reference)
        # No exceptions: only the 3-entry mapping plus metadata.
        assert size <= 8 * 3 + 16

    def test_one_to_one_with_exceptions(self):
        reference = ["a"] * 100
        target = np.array([1] * 90 + list(range(10)), dtype=np.int64)
        size = one_to_one_size(target, reference)
        assert size > one_to_one_size(np.array([1] * 100, dtype=np.int64), reference)

    def test_empty_inputs(self):
        assert dfor_size(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)) > 0
        assert one_to_one_size([], []) > 0


class TestC3Selector:
    def test_estimates_for_integer_pair(self, tpch_dates):
        selector = C3Selector()
        estimates = selector.estimates(tpch_dates, "l_receiptdate", "l_shipdate")
        schemes = {e.scheme for e in estimates}
        assert {"DFOR", "Numerical", "1-to-1", "Hierarchical"} == schemes

    def test_estimates_for_string_reference(self, dmv_table):
        selector = C3Selector()
        estimates = selector.estimates(dmv_table, "zip_code", "city")
        schemes = {e.scheme for e in estimates}
        assert "DFOR" not in schemes  # string reference, no arithmetic schemes
        assert "Hierarchical" in schemes

    def test_best_picks_minimum(self, tpch_dates):
        selector = C3Selector()
        best = selector.best(tpch_dates, "l_receiptdate", "l_shipdate")
        assert best.size_bytes == min(
            e.size_bytes
            for e in selector.estimates(tpch_dates, "l_receiptdate", "l_shipdate")
        )

    def test_corra_and_c3_on_par_for_dates(self, tpch_dates):
        """Table 3's takeaway: the two systems are on par for the date pairs."""
        ship = tpch_dates.column("l_shipdate")
        receipt = tpch_dates.column("l_receiptdate")
        baseline = SingleColumnBaseline().select_column(tpch_dates, "l_receiptdate").size_bytes
        corra_rate = 1 - NonHierarchicalEncoding().encode(receipt, ship, "s").size_bytes / baseline
        c3_rate = (
            1 - C3Selector().best(tpch_dates, "l_receiptdate", "l_shipdate").size_bytes / baseline
        )
        assert corra_rate == pytest.approx(c3_rate, abs=0.05)
