"""Unit tests for the diff-encoding configuration optimizer (paper Fig. 2)."""

import numpy as np
import pytest

from repro.core import DiffEncodingOptimizer, optimal_configuration_exhaustive
from repro.core.optimizer import CandidateGraph
from repro.datasets import TpchLineitemGenerator
from repro.dtypes import INT64, STRING
from repro.errors import ConfigurationError
from repro.storage import Table


class TestGraphConstruction:
    def test_graph_has_all_edges(self, dates_schema_table):
        graph = DiffEncodingOptimizer().build_graph(dates_schema_table)
        assert set(graph.columns) == {"ship", "commit", "receipt"}
        assert len(graph.edge_sizes) == 6  # ordered pairs

    def test_vertex_weights_are_baseline_sizes(self, dates_schema_table):
        graph = DiffEncodingOptimizer().build_graph(dates_schema_table)
        for column in graph.columns:
            assert graph.vertical_sizes[column] > 0

    def test_string_columns_excluded_by_default(self):
        table = Table.from_columns(
            [("x", INT64, np.arange(100)), ("s", STRING, ["a"] * 100)]
        )
        graph = DiffEncodingOptimizer().build_graph(table)
        assert graph.columns == ("x",)

    def test_string_column_explicitly_requested_rejected(self):
        table = Table.from_columns(
            [("x", INT64, np.arange(100)), ("s", STRING, ["a"] * 100)]
        )
        with pytest.raises(ConfigurationError):
            DiffEncodingOptimizer().build_graph(table, ["x", "s"])

    def test_saving_and_edge_lookup(self, dates_schema_table):
        graph = DiffEncodingOptimizer().build_graph(dates_schema_table)
        assert graph.saving("receipt", "ship") == (
            graph.vertical_sizes["receipt"] - graph.edge("receipt", "ship")
        )
        with pytest.raises(ConfigurationError):
            graph.edge("ship", "ship")


class TestGreedySelection:
    def test_constant_offsets_make_both_diff_encoded(self, dates_schema_table):
        _, config = DiffEncodingOptimizer().optimize(dates_schema_table)
        assert config.assignments == {"commit": "ship", "receipt": "ship"} or (
            set(config.assignments) == {"commit", "receipt"}
            and len(config.reference_columns) == 1
        )
        assert config.total_saving > 0
        assert config.total_size < config.baseline_size

    def test_reference_column_stays_vertical(self, dates_schema_table):
        _, config = DiffEncodingOptimizer().optimize(dates_schema_table)
        for reference in config.reference_columns:
            assert reference not in config.assignments

    def test_uncorrelated_columns_stay_vertical(self, rng):
        table = Table.from_columns(
            [
                ("a", INT64, rng.integers(0, 2**30, size=5_000, dtype=np.int64)),
                ("b", INT64, rng.integers(0, 2**30, size=5_000, dtype=np.int64)),
            ]
        )
        _, config = DiffEncodingOptimizer().optimize(table)
        assert config.assignments == {}
        assert config.total_saving == 0

    def test_column_size_accessor(self, dates_schema_table):
        graph, config = DiffEncodingOptimizer().optimize(dates_schema_table)
        for column in graph.columns:
            assert config.column_size(column) > 0

    def test_describe_mentions_choices(self, dates_schema_table):
        _, config = DiffEncodingOptimizer().optimize(dates_schema_table)
        text = config.describe()
        assert "diff-encoded w.r.t." in text
        assert "total saving" in text


class TestAgainstExhaustiveSearch:
    def test_greedy_is_optimal_on_tpch_dates(self):
        dates = TpchLineitemGenerator().generate_dates_only(20_000, seed=3)
        optimizer = DiffEncodingOptimizer()
        graph, greedy = optimizer.optimize(dates)
        exhaustive = optimal_configuration_exhaustive(graph)
        assert greedy.total_size == exhaustive.total_size

    def test_greedy_is_optimal_on_synthetic_chain(self, rng):
        base = rng.integers(10**6, 2 * 10**6, size=5_000, dtype=np.int64)
        table = Table.from_columns(
            [
                ("a", INT64, base),
                ("b", INT64, base + rng.integers(0, 16, size=5_000, dtype=np.int64)),
                ("c", INT64, base + rng.integers(0, 1024, size=5_000, dtype=np.int64)),
            ]
        )
        optimizer = DiffEncodingOptimizer()
        graph, greedy = optimizer.optimize(table)
        exhaustive = optimal_configuration_exhaustive(graph)
        assert greedy.total_size == exhaustive.total_size

    def test_exhaustive_rejects_large_graphs(self):
        graph = CandidateGraph(
            columns=tuple(f"c{i}" for i in range(11)),
            vertical_sizes={f"c{i}": 10 for i in range(11)},
            edge_sizes={},
        )
        with pytest.raises(ConfigurationError):
            optimal_configuration_exhaustive(graph)


class TestPaperFigure2:
    def test_shipdate_chosen_as_reference(self):
        """The greedy configuration must match Fig. 2: shipdate is the
        reference for both commitdate and receiptdate."""
        dates = TpchLineitemGenerator().generate_dates_only(30_000, seed=5)
        _, config = DiffEncodingOptimizer().optimize(dates)
        assert config.assignments["l_receiptdate"] == "l_shipdate"
        assert config.assignments["l_commitdate"] == "l_shipdate"
        assert "l_shipdate" not in config.assignments

    def test_saving_scales_to_82_mb_at_sf10(self):
        generator = TpchLineitemGenerator()
        n_rows = 30_000
        dates = generator.generate_dates_only(n_rows, seed=5)
        _, config = DiffEncodingOptimizer().optimize(dates)
        scaled_mb = config.total_saving * (generator.paper_rows / n_rows) / 1e6
        assert scaled_mb == pytest.approx(82.5, rel=0.03)
