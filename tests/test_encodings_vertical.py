"""Unit tests for the single-column (vertical) encodings.

Every scheme is checked for the same core contract — full-decode round trip,
positional ``gather`` round trip, size accounting — plus scheme-specific
behaviour (frames, dictionaries, runs, exceptions, checkpoints).
"""

import numpy as np
import pytest

from repro.dtypes import DATE, INT64, STRING
from repro.encodings import (
    DeltaEncoding,
    DictionaryEncoding,
    ForBitPackEncoding,
    FrequencyEncoding,
    PlainEncoding,
    RleEncoding,
)
from repro.errors import DecodingError, EncodingError


def _random_positions(n, rng, count=50):
    return rng.integers(0, n, size=count, dtype=np.int64)


@pytest.fixture
def int_values(rng):
    return rng.integers(10_000, 10_500, size=2_000, dtype=np.int64)


@pytest.fixture
def string_values(rng):
    cities = ["Cortland", "Naples", "NYC", "Albany", "Buffalo"]
    return [cities[i] for i in rng.integers(0, len(cities), size=500)]


class TestPlainEncoding:
    def test_int_roundtrip(self, int_values, rng):
        column = PlainEncoding().encode(int_values, INT64)
        assert np.array_equal(column.decode(), int_values)
        pos = _random_positions(len(int_values), rng)
        assert np.array_equal(column.gather(pos), int_values[pos])

    def test_string_roundtrip(self, string_values):
        column = PlainEncoding().encode(string_values, STRING)
        assert column.decode() == string_values
        assert column.gather(np.array([0, 3, 3])) == [
            string_values[0], string_values[3], string_values[3]
        ]

    def test_int_size_matches_logical_width(self, int_values):
        column = PlainEncoding().encode(int_values, DATE)
        assert column.size_bytes == 4 * len(int_values)

    def test_string_size_counts_payload(self):
        column = PlainEncoding().encode(["ab", "c"], STRING)
        assert column.size_bytes == 8 * 2 + 3

    def test_gather_out_of_range(self, int_values):
        column = PlainEncoding().encode(int_values, INT64)
        with pytest.raises(DecodingError):
            column.gather(np.array([len(int_values)]))

    def test_supports_everything(self):
        assert PlainEncoding().supports(STRING)
        assert PlainEncoding().supports(INT64)


class TestForBitPackEncoding:
    def test_roundtrip(self, int_values, rng):
        column = ForBitPackEncoding().encode(int_values, INT64)
        assert np.array_equal(column.decode(), int_values)
        pos = _random_positions(len(int_values), rng)
        assert np.array_equal(column.gather(pos), int_values[pos])

    def test_bit_width_uses_range_not_magnitude(self, int_values):
        column = ForBitPackEncoding().encode(int_values, INT64)
        assert column.bit_width <= 9  # range < 500
        assert column.frame == int(int_values.min())

    def test_constant_column_needs_no_payload_bits(self):
        column = ForBitPackEncoding().encode(np.full(1000, 77, dtype=np.int64), INT64)
        assert column.bit_width == 0
        assert column.size_bytes < 32

    def test_negative_values_supported_via_frame(self):
        values = np.array([-50, -20, -50, -1], dtype=np.int64)
        column = ForBitPackEncoding().encode(values, INT64)
        assert np.array_equal(column.decode(), values)

    def test_size_smaller_than_plain(self, int_values):
        plain = PlainEncoding().encode(int_values, INT64)
        packed = ForBitPackEncoding().encode(int_values, INT64)
        assert packed.size_bytes < plain.size_bytes

    def test_rejects_strings(self):
        with pytest.raises(EncodingError):
            ForBitPackEncoding().encode(["a"], STRING)

    def test_estimate_matches_actual(self, int_values):
        scheme = ForBitPackEncoding()
        assert scheme.estimate_size(int_values, INT64) == scheme.encode(
            int_values, INT64
        ).size_bytes


class TestDictionaryEncoding:
    def test_int_roundtrip(self, rng):
        values = rng.choice(np.array([7, 42, 99, 12345], dtype=np.int64), size=1000)
        column = DictionaryEncoding().encode(values, INT64)
        assert np.array_equal(column.decode(), values)
        pos = _random_positions(1000, rng)
        assert np.array_equal(column.gather(pos), values[pos])

    def test_int_code_width(self, rng):
        values = rng.choice(np.array([7, 42, 99], dtype=np.int64), size=1000)
        column = DictionaryEncoding().encode(values, INT64)
        assert column.bit_width == 2
        assert len(column.dictionary) == 3

    def test_string_roundtrip(self, string_values, rng):
        column = DictionaryEncoding().encode(string_values, STRING)
        assert column.decode() == string_values
        pos = _random_positions(len(string_values), rng, 20)
        assert column.gather(pos) == [string_values[int(p)] for p in pos]

    def test_string_dictionary_sorted_and_distinct(self, string_values):
        column = DictionaryEncoding().encode(string_values, STRING)
        assert column.dictionary == sorted(set(string_values))

    def test_gather_codes(self, string_values):
        column = DictionaryEncoding().encode(string_values, STRING)
        codes = column.gather_codes(np.array([0, 1]))
        dictionary = column.dictionary
        assert dictionary[codes[0]] == string_values[0]
        assert dictionary[codes[1]] == string_values[1]

    def test_size_beats_plain_on_repetitive_strings(self, string_values):
        plain = PlainEncoding().encode(string_values, STRING)
        dictionary = DictionaryEncoding().encode(string_values, STRING)
        assert dictionary.size_bytes < plain.size_bytes

    def test_single_distinct_value(self):
        column = DictionaryEncoding().encode(["x"] * 100, STRING)
        assert column.bit_width == 0
        assert column.decode() == ["x"] * 100


class TestDeltaEncoding:
    def test_roundtrip_sorted(self):
        values = np.cumsum(np.ones(5000, dtype=np.int64)) + 1_000_000
        column = DeltaEncoding(checkpoint_interval=256).encode(values, INT64)
        assert np.array_equal(column.decode(), values)

    def test_roundtrip_unsorted(self, int_values, rng):
        column = DeltaEncoding(checkpoint_interval=128).encode(int_values, INT64)
        assert np.array_equal(column.decode(), int_values)
        pos = _random_positions(len(int_values), rng)
        assert np.array_equal(column.gather(pos), int_values[pos])

    def test_sorted_column_is_tiny(self):
        values = np.arange(10_000, dtype=np.int64)
        delta = DeltaEncoding().encode(values, INT64)
        packed = ForBitPackEncoding().encode(values, INT64)
        assert delta.size_bytes < packed.size_bytes

    def test_gather_across_checkpoints(self):
        values = np.arange(0, 3000, 3, dtype=np.int64)
        column = DeltaEncoding(checkpoint_interval=100).encode(values, INT64)
        pos = np.array([0, 99, 100, 101, 999, 500], dtype=np.int64)
        assert np.array_equal(column.gather(pos), values[pos])

    def test_invalid_checkpoint_interval(self):
        with pytest.raises(EncodingError):
            DeltaEncoding(checkpoint_interval=0).encode(np.arange(10), INT64)

    def test_empty_column(self):
        column = DeltaEncoding().encode(np.zeros(0, dtype=np.int64), INT64)
        assert column.decode().size == 0
        assert column.n_values == 0


class TestRleEncoding:
    def test_roundtrip(self, rng):
        values = np.repeat(rng.integers(0, 5, size=50, dtype=np.int64), 40)
        column = RleEncoding().encode(values, INT64)
        assert np.array_equal(column.decode(), values)
        pos = _random_positions(len(values), rng)
        assert np.array_equal(column.gather(pos), values[pos])

    def test_run_count(self):
        values = np.array([1, 1, 1, 2, 2, 3], dtype=np.int64)
        column = RleEncoding().encode(values, INT64)
        assert column.n_runs == 3

    def test_beats_bitpack_on_long_runs(self):
        values = np.repeat(np.arange(10, dtype=np.int64), 1000)
        rle = RleEncoding().encode(values, INT64)
        packed = ForBitPackEncoding().encode(values, INT64)
        assert rle.size_bytes < packed.size_bytes

    def test_single_run(self):
        column = RleEncoding().encode(np.full(500, 9, dtype=np.int64), INT64)
        assert column.n_runs == 1
        assert np.array_equal(column.decode(), np.full(500, 9))

    def test_alternating_values_degenerate(self):
        values = np.tile(np.array([0, 1], dtype=np.int64), 100)
        column = RleEncoding().encode(values, INT64)
        assert column.n_runs == 200
        assert np.array_equal(column.decode(), values)


class TestFrequencyEncoding:
    def test_roundtrip_with_exceptions(self, rng):
        hot = rng.choice(np.array([5, 6, 7], dtype=np.int64), size=950)
        cold = rng.integers(1_000_000, 2_000_000, size=50, dtype=np.int64)
        values = np.concatenate([hot, cold])
        rng.shuffle(values)
        column = FrequencyEncoding(n_hot=3).encode(values, INT64)
        assert np.array_equal(column.decode(), values)
        pos = _random_positions(len(values), rng)
        assert np.array_equal(column.gather(pos), values[pos])

    def test_exception_count(self, rng):
        values = np.concatenate(
            [np.full(990, 1, dtype=np.int64), np.arange(100, 110, dtype=np.int64)]
        )
        column = FrequencyEncoding(n_hot=1).encode(values, INT64)
        assert column.n_exceptions == 10

    def test_no_exceptions_when_cardinality_small(self, rng):
        values = rng.choice(np.array([1, 2], dtype=np.int64), size=400)
        column = FrequencyEncoding(n_hot=16).encode(values, INT64)
        assert column.n_exceptions == 0

    def test_invalid_hot_count(self):
        with pytest.raises(EncodingError):
            FrequencyEncoding(n_hot=0).encode(np.arange(5), INT64)

    def test_skewed_column_beats_bitpack(self, rng):
        values = np.where(
            rng.random(5000) < 0.99,
            np.int64(3),
            rng.integers(0, 1 << 40, size=5000, dtype=np.int64),
        )
        frequency = FrequencyEncoding(n_hot=8).encode(values, INT64)
        packed = ForBitPackEncoding().encode(values, INT64)
        assert frequency.size_bytes < packed.size_bytes
