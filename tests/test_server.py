"""The query service: protocol, admission, cost gate, result cache, HTTP.

The correctness bar is the library itself: every response served over HTTP
must be bit-identical (as JSON values) to the same plan executed serially
through ``relation.query()``.  The operational bar is hygiene: rejected
queries — queue-full, over-budget, timed out — must leave the admission
gate, the result cache and the engine's pools exactly as they found them.
"""

from __future__ import annotations

import http.client
import json
import threading

import numpy as np
import pytest

from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64, STRING
from repro.errors import ValidationError
from repro.query import Between, Count, Eq, Sum
from repro.query.engine import EngineConfig
from repro.server import (
    BackgroundServer,
    CostLimitError,
    QueryService,
    QueryTimeoutError,
    QueueFullError,
    ServiceConfig,
    UnknownTableError,
    parse_predicate,
    parse_request,
)
from repro.server.service import _AdmissionGate
from repro.storage import Catalog, Table

N_ROWS = 3_000
TAGS = [f"tag_{i}" for i in range(5)]


def _build_relation(seed: int = 3):
    rng = np.random.default_rng(seed)
    table = Table.from_columns(
        [
            ("ship", INT64, np.arange(N_ROWS, dtype=np.int64) + 8_000),
            ("v", INT64, rng.integers(0, 500, N_ROWS)),
            ("tag", STRING, [TAGS[i] for i in rng.integers(0, len(TAGS), N_ROWS)]),
        ]
    )
    plan = CompressionPlan.vertical_only(table.schema)
    return TableCompressor(plan, block_size=250).compress(table)


RELATION = _build_relation()


@pytest.fixture(scope="module")
def catalog_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve") / "cat"
    Catalog(root).save("trips", RELATION)
    return root


class TestProtocol:
    def test_parse_predicate_all_ops(self):
        node = {
            "op": "and",
            "children": [
                {"op": "between", "column": "ship", "lo": 1, "hi": 2},
                {"op": "or", "children": [
                    {"op": "eq", "column": "tag", "value": "x"},
                    {"op": "in", "column": "v", "values": [1, 2, 3]},
                ]},
                {"op": "not", "child": {"op": "eq", "column": "v", "value": 0}},
            ],
        }
        predicate = parse_predicate(node)
        assert sorted(set(predicate.columns())) == ["ship", "tag", "v"]

    @pytest.mark.parametrize(
        "bad",
        [
            {"op": "zz"},
            {"op": "eq", "column": "a"},
            {"op": "eq", "value": 1},
            {"op": "eq", "column": "a", "value": True},
            {"op": "between", "column": "a", "lo": 1},
            {"op": "in", "column": "a", "values": []},
            {"op": "and", "children": [{"op": "eq", "column": "a", "value": 1}]},
            {"op": "not"},
            "eq a 1",
            42,
        ],
    )
    def test_parse_predicate_rejects_malformed(self, bad):
        with pytest.raises(ValidationError):
            parse_predicate(bad)

    @pytest.mark.parametrize(
        "bad",
        [
            {},
            {"table": ""},
            {"table": "t", "bogus": 1},
            {"table": "t", "select": []},
            {"table": "t", "select": ["a"], "aggregates": {"n": {"fn": "count"}}},
            {"table": "t", "group_by": ["a"]},
            {"table": "t", "aggregates": {"n": {"fn": "median", "column": "a"}}},
            {"table": "t", "aggregates": {"n": {"fn": "sum"}}},
            {"table": "t", "aggregates": {"n": {"fn": "count", "column": "a"}}},
            {"table": "t", "limit": -1},
            {"table": "t", "limit": True},
            ["t"],
        ],
    )
    def test_parse_request_rejects_malformed(self, bad):
        with pytest.raises(ValidationError):
            parse_request(bad)

    def test_parse_request_roundtrip(self):
        request = parse_request(
            {
                "table": "trips",
                "where": {"op": "eq", "column": "tag", "value": "tag_1"},
                "group_by": ["tag"],
                "aggregates": {"n": {"fn": "count"}, "s": {"fn": "sum", "column": "v"}},
                "limit": 10,
            }
        )
        assert request.table == "trips"
        assert request.group_by == ("tag",)
        assert [name for name, _ in request.aggregates] == ["n", "s"]
        assert request.limit == 10


class TestAdmissionGate:
    def test_queue_full_rejects_immediately(self):
        import time

        gate = _AdmissionGate(max_concurrency=1, queue_depth=0)
        gate.acquire(deadline=time.monotonic() + 5)
        with pytest.raises(QueueFullError):
            gate.acquire(deadline=time.monotonic() + 5)
        gate.release()
        # The freed slot admits again.
        gate.acquire(deadline=time.monotonic() + 5)
        gate.release()
        assert gate.depths() == (0, 0)

    def test_queued_waiter_times_out_and_leaves_no_residue(self):
        import time

        gate = _AdmissionGate(max_concurrency=1, queue_depth=4)
        gate.acquire(deadline=time.monotonic() + 5)
        with pytest.raises(QueryTimeoutError):
            gate.acquire(deadline=time.monotonic() + 0.05)
        assert gate.depths() == (1, 0)
        gate.release()
        assert gate.depths() == (0, 0)

    def test_waiter_admitted_when_slot_frees(self):
        import time

        gate = _AdmissionGate(max_concurrency=1, queue_depth=4)
        gate.acquire(deadline=time.monotonic() + 5)
        admitted = threading.Event()

        def waiter():
            gate.acquire(deadline=time.monotonic() + 5)
            admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert not admitted.wait(timeout=0.1)
        gate.release()
        assert admitted.wait(timeout=5)
        gate.release()
        thread.join(timeout=5)
        assert gate.depths() == (0, 0)


class TestQueryService:
    def test_results_bit_identical_to_library(self, catalog_dir):
        payload = {
            "table": "trips",
            "where": {"op": "between", "column": "ship", "lo": 8_100, "hi": 8_900},
            "aggregates": {"n": {"fn": "count"}, "s": {"fn": "sum", "column": "v"}},
        }
        serial = (
            RELATION.query()
            .where(Between("ship", 8_100, 8_900))
            .agg(n=Count(), s=Sum("v"))
            .execute()
        )
        with QueryService(catalog_dir) as service:
            body = service.execute(payload)
        assert body["columns"]["n"] == list(serial.columns["n"])
        assert body["columns"]["s"] == list(serial.columns["s"])

    def test_result_cache_hit_and_invalidation(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        catalog.save("t", RELATION)
        payload = {
            "table": "t",
            "where": {"op": "eq", "column": "tag", "value": "tag_1"},
            "aggregates": {"n": {"fn": "count"}},
        }
        with QueryService(tmp_path / "cat") as service:
            first = service.execute(payload)
            second = service.execute(payload)
            assert first == second
            assert service.metrics.queries_cached == 1
            assert service._result_cache.snapshot()["hits"] == 1
            # Overwrite the table: the cached entry must not survive.
            smaller = _build_relation(seed=9)
            catalog.save("t", smaller, overwrite=True)
            service.engine.refresh_table("t")
            third = service.execute(payload)
            assert service.metrics.queries_cached == 1  # stale entry not served
            assert third == service.execute(payload)  # fresh entry caches again

    def test_cost_limit_rejection_is_clean(self, catalog_dir):
        config = ServiceConfig(max_rows_scanned=100)
        with QueryService(catalog_dir, config=config) as service:
            payload = {
                "table": "trips",
                "where": {"op": "eq", "column": "v", "value": 7},
                "aggregates": {"n": {"fn": "count"}},
            }
            with pytest.raises(CostLimitError):
                service.execute(payload)
            assert service.metrics.rejected_cost == 1
            # Nothing was admitted, cached, or left behind.
            assert service._gate.depths() == (0, 0)
            assert service._result_cache.snapshot()["entries"] == 0
            # Pruned-only plans stay under the row budget and still run.
            ok = service.execute(
                {
                    "table": "trips",
                    "where": {"op": "between", "column": "ship", "lo": 1, "hi": 2},
                    "aggregates": {"n": {"fn": "count"}},
                }
            )
            assert ok["columns"]["n"] == [0]

    def test_timeout_rejection_is_clean(self, catalog_dir):
        config = ServiceConfig(timeout_seconds=0.0)
        with QueryService(catalog_dir, config=config) as service:
            payload = {"table": "trips", "aggregates": {"n": {"fn": "count"}}}
            with pytest.raises(QueryTimeoutError):
                service.execute(payload)
            assert service.metrics.timeouts == 1
            assert service._gate.depths() == (0, 0)
            assert service._result_cache.snapshot()["entries"] == 0

    def test_unknown_table_maps_to_404_error(self, catalog_dir):
        with QueryService(catalog_dir) as service:
            with pytest.raises(UnknownTableError) as excinfo:
                service.execute({"table": "nope", "aggregates": {"n": {"fn": "count"}}})
            assert excinfo.value.status == 404

    def test_malformed_request_counts_as_failed(self, catalog_dir):
        with QueryService(catalog_dir) as service:
            with pytest.raises(ValidationError):
                service.execute({"table": "trips", "where": {"op": "zz"}})
            assert service.metrics.queries_failed == 1

    def test_concurrent_requests_identical_and_counted(self, catalog_dir):
        payloads = [
            {
                "table": "trips",
                "where": {"op": "eq", "column": "tag", "value": tag},
                "aggregates": {"n": {"fn": "count"}, "s": {"fn": "sum", "column": "v"}},
            }
            for tag in TAGS
        ]
        expected = []
        for tag in TAGS:
            serial = (
                RELATION.query().where(Eq("tag", tag)).agg(n=Count(), s=Sum("v")).execute()
            )
            expected.append({k: list(v) for k, v in serial.columns.items()})
        with QueryService(
            catalog_dir, engine_config=EngineConfig(workers=2)
        ) as service:
            errors: list = []
            results: dict[int, list] = {}

            def worker(thread_id: int):
                try:
                    out = []
                    for index, payload in enumerate(payloads * 4):
                        out.append((index % len(payloads), service.execute(payload)))
                    results[thread_id] = out
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors
            for out in results.values():
                for which, body in out:
                    assert body["columns"] == expected[which]
            metrics = service.snapshot_metrics()
            assert metrics["queries_total"] == 6 * len(payloads) * 4
            assert metrics["queries_ok"] == metrics["queries_total"]
            assert metrics["result_cache"]["hits"] > 0
            assert service._gate.depths() == (0, 0)


class TestHttpServer:
    def _request(self, host, port, method, path, body=None):
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request(
                method,
                path,
                body=None if body is None else json.dumps(body),
                headers={"Content-Type": "application/json"} if body is not None else {},
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def test_end_to_end_over_http(self, catalog_dir):
        with QueryService(catalog_dir) as service:
            with BackgroundServer(service, port=0) as (host, port):
                status, health = self._request(host, port, "GET", "/health")
                assert (status, health) == (200, {"status": "ok"})
                status, tables = self._request(host, port, "GET", "/tables")
                assert status == 200 and tables == {"tables": ["trips"]}

                payload = {
                    "table": "trips",
                    "where": {"op": "eq", "column": "tag", "value": "tag_0"},
                    "select": ["ship", "tag"],
                    "limit": 5,
                }
                status, body = self._request(host, port, "POST", "/query", payload)
                assert status == 200
                serial = (
                    RELATION.query()
                    .where(Eq("tag", "tag_0"))
                    .select("ship", "tag")
                    .limit(5)
                    .execute()
                )
                assert body["columns"]["ship"] == list(serial.columns["ship"])
                assert body["columns"]["tag"] == list(serial.columns["tag"])

                status, _ = self._request(host, port, "POST", "/query", {"table": "nope"})
                assert status == 404
                status, _ = self._request(
                    host, port, "POST", "/query", {"table": "trips", "where": {"op": "zz"}}
                )
                assert status == 400
                status, _ = self._request(host, port, "GET", "/bogus")
                assert status == 404
                status, _ = self._request(host, port, "GET", "/query")
                assert status == 405

                status, metrics = self._request(host, port, "GET", "/metrics")
                assert status == 200
                assert metrics["queries_total"] >= 3
                assert metrics["latency"]["count"] >= 1
                assert "trips" in metrics["tables"]

    def test_http_status_for_rejections(self, catalog_dir):
        config = ServiceConfig(max_rows_scanned=100)
        with QueryService(catalog_dir, config=config) as service:
            with BackgroundServer(service, port=0) as (host, port):
                status, body = self._request(
                    host,
                    port,
                    "POST",
                    "/query",
                    {
                        "table": "trips",
                        "where": {"op": "eq", "column": "v", "value": 7},
                        "aggregates": {"n": {"fn": "count"}},
                    },
                )
                assert status == 413
                assert "limit" in body["error"]

    def test_invalid_json_is_400(self, catalog_dir):
        with QueryService(catalog_dir) as service:
            with BackgroundServer(service, port=0) as (host, port):
                conn = http.client.HTTPConnection(host, port, timeout=30)
                try:
                    conn.request(
                        "POST",
                        "/query",
                        body="{not json",
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    assert response.status == 400
                finally:
                    conn.close()
