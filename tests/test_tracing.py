"""The tracing subsystem: parity, span-tree shape, analyze tables, exposition.

The correctness bar has two halves.  First, observation must be free of
side effects: a traced query — serial, parallel or disk-backed — must
return results bit-identical to the untraced run.  Second, the telemetry
itself must be well-formed: span trees have no orphans and children nest
inside their parents even across worker threads, the ``EXPLAIN ANALYZE``
stage table agrees with the final :class:`ScanMetrics`, the
``ServerMetrics`` snapshot is internally consistent under concurrency,
and the Prometheus exposition parses.
"""

from __future__ import annotations

import json
import re
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.framework import load_project, run_rules
from repro.analysis.spans import SpanDisciplineRule
from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64
from repro.query import Between, Count, EngineConfig, Sum
from repro.query.engine import Engine
from repro.query.tracing import (
    HISTOGRAM_BUCKETS,
    TRACE_DISABLED,
    LatencyHistogram,
    QueryTrace,
    StageHistograms,
    Tracer,
    activate,
    current_tracer,
    run_adopted,
)
from repro.server.metrics import ServerMetrics, prometheus_exposition
from repro.server.service import QueryService, ServiceConfig
from repro.storage import Catalog, Table

N_ROWS = 20_000
RUN_LENGTH = 64
N_GRADES = 50


def _build_relation(seed: int = 7):
    rng = np.random.default_rng(seed)
    runs = -(-N_ROWS // RUN_LENGTH)
    grade = np.repeat(np.arange(runs, dtype=np.int64) % N_GRADES, RUN_LENGTH)[:N_ROWS]
    table = Table.from_columns(
        [
            ("grade", INT64, grade),
            ("word", INT64, rng.integers(0, 65_536, N_ROWS)),
        ]
    )
    plan = (
        CompressionPlan.builder(table.schema)
        .vertical("grade", "rle")
        .vertical("word", "for_bitpack")
        .build()
    )
    return TableCompressor(plan, block_size=2_048).compress(table)


RELATION = _build_relation()


@pytest.fixture(scope="module")
def disk_engine(tmp_path_factory):
    root = tmp_path_factory.mktemp("tracing") / "cat"
    Catalog(root).save("grades", _build_relation())
    with Engine(EngineConfig(workers=4), catalog=root) as engine:
        yield engine


def _assert_identical(traced, untraced):
    assert traced.n_rows == untraced.n_rows
    assert set(traced.columns) == set(untraced.columns)
    for name in traced.columns:
        assert np.array_equal(
            np.asarray(traced.columns[name]), np.asarray(untraced.columns[name])
        )


class TestSpanMechanics:
    def test_disabled_tracer_is_the_shared_noop(self):
        # One global null span for every call: the disabled hot path
        # allocates nothing.
        assert current_tracer() is TRACE_DISABLED
        assert TRACE_DISABLED.span("a") is TRACE_DISABLED.span("b", rows=1)
        assert TRACE_DISABLED.current() is None
        TRACE_DISABLED.annotate(rows=1)  # no-op, must not raise
        assert TRACE_DISABLED.spans() == ()

    def test_nesting_parents_and_intervals(self):
        tracer = Tracer()
        with activate(tracer):
            with tracer.span("outer") as outer:
                with tracer.span("inner", rows=3) as inner:
                    tracer.annotate(bytes=9)
        spans = {span.name: span for span in tracer.spans()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].attrs == {"rows": 3, "bytes": 9}
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert current_tracer() is TRACE_DISABLED  # activation restored

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.name == "doomed" and span.end >= span.start
        assert tracer.current() is None  # the stack did not leak

    def test_adopt_parents_worker_spans(self):
        tracer = Tracer()
        with activate(tracer):
            with tracer.span("root") as root:

                def worker(item):
                    with current_tracer().span("child", item=item):
                        pass
                    return item

                thread = threading.Thread(
                    target=run_adopted, args=(tracer, root, worker, 1)
                )
                thread.start()
                thread.join()
        spans = {span.name: span for span in tracer.spans()}
        assert spans["child"].parent_id == spans["root"].span_id
        assert spans["child"].thread != spans["root"].thread


class TestTracedQueryParity:
    """Tracing on vs off is bit-identical, in memory and out of core."""

    @given(lo=st.integers(0, N_GRADES - 1), span=st.integers(0, N_GRADES))
    @settings(max_examples=15, deadline=None)
    def test_in_memory_serial_and_parallel(self, lo, span):
        for workers in (1, 4):
            config = EngineConfig(workers=workers)
            lazy = (
                RELATION.query(config=config)
                .where(Between("grade", lo, lo + span))
                .agg(n=Count(), s=Sum("word"))
            )
            untraced = lazy.execute()
            traced = lazy.execute(tracer=Tracer())
            _assert_identical(traced, untraced)

    @given(lo=st.integers(0, N_GRADES - 1), span=st.integers(0, N_GRADES))
    @settings(max_examples=10, deadline=None)
    def test_disk_backed(self, disk_engine, lo, span):
        lazy = (
            disk_engine.query(disk_engine.table("grades"))
            .where(Between("grade", lo, lo + span))
            .select("word")
        )
        untraced = lazy.execute()
        traced = lazy.execute(tracer=Tracer())
        _assert_identical(traced, untraced)

    def test_traced_count_matches_untraced(self):
        lazy = RELATION.query(config=EngineConfig(workers=2)).where(
            Between("grade", 5, 25)
        )
        assert lazy.count(tracer=Tracer()) == lazy.count()


class TestSpanTreeShape:
    def _trace(self, disk_engine):
        tracer = disk_engine.tracer()
        lazy = (
            disk_engine.query(disk_engine.table("grades"))
            .where(Between("grade", 10, 30))
            .agg(n=Count(), s=Sum("word"))
        )
        lazy.execute(tracer=tracer)
        return QueryTrace.from_tracer(tracer, query="grades")

    def test_no_orphans_and_children_nest_inside_parents(self, disk_engine):
        trace = self._trace(disk_engine)
        assert trace.spans
        by_id = {span.span_id: span for span in trace.spans}
        for span in trace.spans:
            if span.parent_id is None:
                continue
            # Every parent reference resolves, even for spans opened on
            # adopted worker threads ...
            assert span.parent_id in by_id, f"orphan span {span.name!r}"
            parent = by_id[span.parent_id]
            # ... and the child's interval sits inside its parent's.
            assert parent.start <= span.start
            assert span.end <= parent.end

    def test_disk_parallel_trace_covers_fetch_and_kernel_stages(self, disk_engine):
        trace = self._trace(disk_engine)
        names = {span.name for span in trace.spans}
        assert {"execute", "plan", "predicate", "fetch"} <= names
        kernels = {
            span.attrs.get("kernel")
            for span in trace.spans
            if span.name == "predicate"
        }
        assert "rle" in kernels  # the grade predicate ran in run space

    def test_trace_document_roundtrips_as_json(self, disk_engine):
        trace = self._trace(disk_engine)
        doc = json.loads(trace.to_json_line())
        assert doc["query"] == "grades"
        assert doc["n_spans"] == len(trace.spans)
        starts = [s["start_seconds"] for s in doc["spans"]]
        assert starts == sorted(starts)  # documents list spans in start order
        assert all(s >= 0.0 for s in starts)
        assert trace.render_tree().splitlines()[0].startswith("execute")


class TestExplainAnalyze:
    def test_stage_rows_match_scan_metrics(self):
        tracer = Tracer()
        lazy = (
            RELATION.query(config=EngineConfig(workers=2))
            .where(Between("grade", 10, 30))
            .agg(n=Count(), s=Sum("word"))
        )
        result = lazy.execute(tracer=tracer)
        stages = QueryTrace.from_tracer(tracer).stage_summary()
        # The gather spans annotate exactly the rows they materialise, so
        # the per-stage sum equals the final counter.
        assert stages["gather"]["rows"] == result.metrics.rows_gathered
        assert stages["aggregate"]["rows"] == result.metrics.rows_matched
        assert stages["execute"]["calls"] == 1

    def test_explain_analyze_renders_for_disk_backed_parallel_query(self, disk_engine):
        lazy = (
            disk_engine.query(disk_engine.table("grades"))
            .where(Between("grade", 10, 30))
            .agg(n=Count())
        )
        text = lazy.explain(analyze=True)
        assert "== execution (analyze) ==" in text
        assert "== span tree ==" in text
        for stage in ("execute", "plan", "predicate", "aggregate"):
            assert re.search(rf"^{stage}\s", text, flags=re.MULTILINE), stage

    def test_explain_without_analyze_does_not_execute(self):
        lazy = RELATION.query(config=EngineConfig()).where(Between("grade", 0, 9))
        text = lazy.explain()
        assert "== execution (analyze) ==" not in text


class TestHistograms:
    def test_buckets_are_cumulative_and_fixed(self):
        histogram = LatencyHistogram()
        histogram.observe(2.0**-17)  # below the first bound
        histogram.observe(1.0)
        histogram.observe(100.0)  # beyond the ladder -> +Inf
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["sum_seconds"] == pytest.approx(2.0**-17 + 101.0)
        labels = [label for label, _ in snap["buckets"]]
        assert labels[-1] == "+Inf"
        assert [float(label) for label in labels[:-1]] == list(HISTOGRAM_BUCKETS)
        counts = [count for _, count in snap["buckets"]]
        assert counts == sorted(counts)  # cumulative => monotone
        assert counts[0] == 1 and counts[-1] == 3

    def test_merge_is_exact(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.observe(0.001)
        b.observe(0.002)
        b.observe(5.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["count"] == 3
        assert snap["buckets"][-1][1] == 3

    def test_tracer_feeds_stage_histograms(self):
        sink = StageHistograms()
        tracer = Tracer(histograms=sink)
        with tracer.span("scan"):
            pass
        with tracer.span("scan"):
            pass
        with tracer.span("plan"):
            pass
        assert sink.stages() == ("plan", "scan")
        assert sink.snapshot()["scan"]["count"] == 2


class TestServerMetricsConsistency:
    def test_snapshot_is_one_consistent_cut_under_concurrency(self):
        metrics = ServerMetrics()
        stop = threading.Event()
        failures: list[tuple[int, int]] = []

        def writer():
            while not stop.is_set():
                metrics.record_success(0.001, None, cached=False)

        def reader():
            while not stop.is_set():
                snap = metrics.snapshot()
                if snap["queries_ok"] != snap["latency"]["count"]:
                    failures.append((snap["queries_ok"], snap["latency"]["count"]))

        threads = [threading.Thread(target=writer) for _ in range(4)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        threading.Event().wait(0.3)
        stop.set()
        for thread in threads:
            thread.join()
        # Pre-fix, the latency sample landed outside the counter lock and
        # snapshots could observe queries_ok != recorded samples.
        assert not failures, failures[:3]
        snap = metrics.snapshot()
        assert snap["queries_ok"] == snap["latency"]["count"] > 0


_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})? "
    r"-?(\d+\.?\d*([eE][+-]?\d+)?|\+Inf|NaN)$"
)


class TestPrometheusExposition:
    def _exposition(self):
        metrics = ServerMetrics()
        metrics.count_request()
        metrics.record_success(0.01, None, cached=False)
        sink = StageHistograms()
        sink.observe("scan", 0.002)
        sink.observe("predicate", 0.0001)
        snapshot = metrics.snapshot() | {
            "tables": {"grades": {"n_rows": N_ROWS, "io": {"bytes_read": 123}}}
        }
        return prometheus_exposition(snapshot, stages=sink.snapshot())

    def test_every_line_is_valid_exposition_syntax(self):
        text = self._exposition()
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) corra_[a-z0-9_]+ .+$", line), line
            else:
                assert _SAMPLE_RE.match(line), line

    def test_counters_tables_and_histograms_are_present(self):
        text = self._exposition()
        assert "# TYPE corra_queries_total counter" in text
        assert "corra_queries_total 1" in text
        assert 'corra_table_io_bytes_read{table="grades"} 123' in text
        assert "# TYPE corra_stage_duration_seconds histogram" in text
        assert 'corra_stage_duration_seconds_bucket{stage="scan",le="+Inf"} 1' in text
        assert 'corra_stage_duration_seconds_count{stage="predicate"} 1' in text
        # Families are contiguous: a metric name never reappears after a
        # different family started (the exposition contract).
        seen: list[str] = []
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            # _bucket/_sum/_count are all samples of one histogram family.
            name = re.sub(r"_(bucket|sum|count)$", "", name) if "stage_duration" in name else name
            if not seen or seen[-1] != name:
                assert name not in seen, f"family {name} split"
                seen.append(name)

    def test_bucket_counts_are_cumulative_per_stage(self):
        text = self._exposition()
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith('corra_stage_duration_seconds_bucket{stage="scan"')
        ]
        assert counts and counts == sorted(counts)
        assert counts[-1] == 1


class TestServiceTracing:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("tracesvc") / "cat"
        Catalog(root).save("grades", _build_relation())
        with QueryService(root, config=ServiceConfig()) as svc:
            yield svc

    def _request(self, trace: bool) -> dict:
        body = {
            "table": "grades",
            "where": {"op": "between", "column": "grade", "lo": 5, "hi": 25},
            "aggregates": {"n": {"fn": "count"}, "s": {"fn": "sum", "column": "word"}},
        }
        if trace:
            body["trace"] = True
        return body

    def test_trace_true_attaches_span_tree(self, service):
        body = service.execute(self._request(trace=True))
        assert body["n_rows"] == 1
        trace = body["trace"]
        assert trace["n_spans"] > 0
        names = {span["name"] for span in trace["spans"]}
        assert {"request", "parse", "execute", "plan"} <= names

    def test_cached_responses_never_leak_a_trace(self, service):
        traced = service.execute(self._request(trace=True))
        untraced = service.execute(self._request(trace=False))
        assert "trace" in traced
        # Same plan, served from the result cache — the cached entry must
        # not carry the earlier request's trace.
        assert "trace" not in untraced
        assert untraced["columns"] == traced["columns"]

    def test_requests_feed_engine_stage_histograms(self, service):
        service.execute(self._request(trace=False))
        snap = service.snapshot_metrics()
        assert snap["stages"], "trace_requests=True must feed stage histograms"
        assert "request" in snap["stages"]
        assert snap["stages"]["request"]["count"] >= 1

    def test_trace_flag_is_validated(self, service):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            service.execute(self._request(trace=False) | {"trace": "yes"})


class TestSpanDisciplineRule:
    def _project(self, tmp_path, source: str):
        path = tmp_path / "query" / "mod.py"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        return load_project([tmp_path])

    def test_flags_span_call_outside_with(self, tmp_path):
        findings = run_rules(
            self._project(tmp_path, "span = tracer.span('scan')\n"),
            [SpanDisciplineRule()],
        )
        assert [f.rule for f in findings] == ["span-discipline"]
        assert "outside a with" in findings[0].message

    def test_accepts_with_and_honours_suppression(self, tmp_path):
        source = (
            "with tracer.span('scan') as s:\n"
            "    pass\n"
            "with tracer.adopt(parent):\n"
            "    pass\n"
            "m.span(0)  # corra: ignore[span-discipline] -- regex Match.span\n"
        )
        assert run_rules(self._project(tmp_path, source), [SpanDisciplineRule()]) == []

    def test_flags_adopt_passed_around(self, tmp_path):
        findings = run_rules(
            self._project(tmp_path, "ctx = tracer.adopt(parent)\nctx.__enter__()\n"),
            [SpanDisciplineRule()],
        )
        assert len(findings) == 1
