"""Parity and unit tests for the compressed-domain kernels.

The contract under test: every kernel in :mod:`repro.query.kernels` is
*exact* — with kernels on, filters, aggregates, group-bys and materialised
selections are bit-identical to the decode-then-compare baseline
(``use_kernels=False``), serial and parallel alike, over every vertical
encoding and with outlier-bearing horizontal columns in the mix (which the
registry must decline, falling back to decode).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64
from repro.query import (
    DEFAULT_KERNELS,
    And,
    Avg,
    Between,
    Count,
    Eq,
    In,
    Max,
    Min,
    Not,
    Or,
    Sum,
    materialize_columns,
)
from repro.storage import DiskRelation, Table, write_table

#: Every vertical scheme a kernel serves, plus dictionary (own code-space
#: path) and plain (no kernel at all) as controls.
SCHEMES = ("rle", "delta", "frequency", "for_bitpack", "dictionary", "plain")


def compress(table, block_size=256, scheme=None):
    if scheme is None:
        plan = CompressionPlan.vertical_only(table.schema)
    else:
        builder = CompressionPlan.builder(table.schema)
        for name in table.column_names:
            builder.vertical(name, scheme)
        plan = builder.build()
    return TableCompressor(plan, block_size=block_size).compress(table)


def single_column_relation(values, scheme, block_size=256):
    table = Table.from_columns([("x", INT64, np.asarray(values, dtype=np.int64))])
    return compress(table, block_size=block_size, scheme=scheme)


def assert_query_parity(relation, predicate):
    """Kernel-on (serial + parallel) results equal the decode baseline."""
    kernel = relation.query().where(predicate)
    parallel = relation.query(workers=2).where(predicate)
    baseline = relation.query(use_kernels=False).where(predicate)

    agg = dict(n=Count(), s=Sum("x"), lo=Min("x"), hi=Max("x"), a=Avg("x"))
    got = kernel.agg(**agg).execute()
    got_parallel = parallel.agg(**agg).execute()
    want = baseline.agg(**agg).execute()
    for name in agg:
        assert got.scalar(name) == want.scalar(name), name
        assert got_parallel.scalar(name) == want.scalar(name), name

    grouped = relation.query().where(predicate).group_by("x").agg(n=Count(), s=Sum("x"))
    grouped_base = (
        relation.query(use_kernels=False).where(predicate).group_by("x").agg(n=Count(), s=Sum("x"))
    )
    assert grouped.execute().columns == grouped_base.execute().columns

    rows = relation.query().where(predicate).select("x").execute()
    rows_base = relation.query(use_kernels=False).where(predicate).select("x").execute()
    assert np.array_equal(np.asarray(rows.columns["x"]), np.asarray(rows_base.columns["x"]))


# -- strategies ---------------------------------------------------------------

run_heavy_values = st.lists(
    st.tuples(st.integers(min_value=-50, max_value=50), st.integers(min_value=1, max_value=40)),
    min_size=1,
    max_size=30,
).map(lambda runs: np.repeat([v for v, _ in runs], [n for _, n in runs]).astype(np.int64))

constants = st.integers(min_value=-60, max_value=60)


def leaf_predicates():
    eq = constants.map(lambda v: Eq("x", v))
    between = st.tuples(constants, constants).map(
        lambda lo_hi: Between("x", min(lo_hi), max(lo_hi))
    )
    open_range = st.tuples(constants, st.booleans()).map(
        lambda b: Between("x", b[0], None) if b[1] else Between("x", None, b[0])
    )
    member = st.lists(constants, min_size=1, max_size=5).map(lambda vs: In("x", vs))
    return st.one_of(eq, between, open_range, member)


predicates = st.recursive(
    leaf_predicates(),
    lambda children: st.one_of(
        children.map(lambda c: Not(c)),
        st.tuples(children, children).map(lambda pair: And(*pair)),
        st.tuples(children, children).map(lambda pair: Or(*pair)),
    ),
    max_leaves=4,
)


class TestKernelParityProperties:
    @given(values=run_heavy_values, predicate=predicates, scheme=st.sampled_from(SCHEMES))
    @settings(max_examples=60, deadline=None)
    def test_every_encoding_matches_decode_baseline(self, values, predicate, scheme):
        relation = single_column_relation(values, scheme, block_size=64)
        assert_query_parity(relation, predicate)

    @given(values=run_heavy_values, predicate=predicates)
    @settings(max_examples=30, deadline=None)
    def test_monotonic_delta_matches_decode_baseline(self, values, predicate):
        relation = single_column_relation(np.sort(values), "delta", block_size=64)
        assert_query_parity(relation, predicate)

    @given(values=run_heavy_values, predicate=predicates)
    @settings(max_examples=30, deadline=None)
    def test_outlier_bearing_diff_column_declines_and_matches(self, values, predicate):
        # A horizontal (diff-encoded) target with outliers: the registry
        # must decline (the column has a dependency) and the decode
        # fallback must keep parity.
        base = np.arange(values.size, dtype=np.int64) * 3
        outliers = np.where(np.arange(values.size) % 17 == 0, 10_000, 0)
        table = Table.from_columns(
            [("base", INT64, base), ("x", INT64, base + values + outliers)]
        )
        plan = CompressionPlan.builder(table.schema).diff_encode("x", "base").build()
        relation = TableCompressor(plan, block_size=64).compress(table)
        block = relation.blocks[0]
        assert block.dependency("x") is not None
        assert DEFAULT_KERNELS.predicate_mask(block, "x", Eq("x", 0)) is None
        assert_query_parity(relation, predicate)


class TestRleKernel:
    @pytest.fixture
    def relation(self):
        values = np.repeat(np.arange(100, dtype=np.int64) % 7, 80)
        return single_column_relation(values, "rle", block_size=1000)

    def test_compound_predicate_answers_in_run_space(self, relation):
        predicate = Or(Eq("x", 2), Not(Between("x", 0, 4)))
        result = relation.query().where(predicate).agg(n=Count()).execute()
        assert result.metrics.rows_decoded == 0
        assert result.metrics.rows_rle_evaluated == relation.n_rows
        assert 0 < result.metrics.runs_evaluated < relation.n_rows

    def test_run_weighted_aggregates_exactly_equal_decode(self, relation):
        predicate = Between("x", 1, 5)
        agg = dict(n=Count(), s=Sum("x"), lo=Min("x"), hi=Max("x"), a=Avg("x"))
        got = relation.query().where(predicate).agg(**agg).execute()
        want = relation.query(use_kernels=False).where(predicate).agg(**agg).execute()
        for name in agg:
            assert got.scalar(name) == want.scalar(name)
        assert got.metrics.rows_kernel_aggregated > 0
        assert want.metrics.rows_kernel_aggregated == 0

    def test_group_by_runs_in_run_space(self, relation):
        query = relation.query().where(Not(Eq("x", 0))).group_by("x").agg(n=Count())
        result = query.execute()
        assert result.metrics.rows_decoded == 0
        assert result.metrics.rows_kernel_aggregated > 0
        assert result.columns["x"] == [1, 2, 3, 4, 5, 6]

    def test_disabling_kernels_restores_decode_accounting(self, relation):
        result = relation.query(use_kernels=False).where(Eq("x", 3)).agg(n=Count()).execute()
        assert result.metrics.rows_rle_evaluated == 0
        assert result.metrics.runs_evaluated == 0
        assert result.metrics.rows_decoded > 0


class TestForKernel:
    def test_word_space_between_avoids_decoding(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 65_536, size=4_000).astype(np.int64)
        relation = single_column_relation(values, "for_bitpack", block_size=4_000)
        result = relation.query().where(Between("x", 1_000, 2_000)).agg(n=Count()).execute()
        assert result.scalar("n") == int(((values >= 1_000) & (values <= 2_000)).sum())
        assert result.metrics.rows_decoded == 0
        assert result.metrics.rows_for_evaluated == values.size

    def test_out_of_domain_bounds_clamp(self):
        values = np.arange(100, 200, dtype=np.int64)
        relation = single_column_relation(values, "for_bitpack")
        for low, high, expected in [
            (-(10**9), 10**9, 100),  # clamps to the full domain
            (150, 10**9, 50),
            (300, 400, 0),  # zone map prunes or the kernel returns all-false
        ]:
            result = relation.query().where(Between("x", low, high)).agg(n=Count()).execute()
            assert result.scalar("n") == expected

    def test_non_integer_constants_fall_back_to_decode(self):
        values = np.arange(50, dtype=np.int64)
        relation = single_column_relation(values, "for_bitpack", block_size=50)
        block = relation.blocks[0]
        assert DEFAULT_KERNELS.predicate_mask(block, "x", Eq("x", 1.5)) is None
        mask = DEFAULT_KERNELS.predicate_mask(block, "x", Eq("x", 7))
        assert mask is not None and int(mask.sum()) == 1


class TestDeltaKernel:
    def test_monotonic_range_is_two_binary_searches(self):
        values = np.cumsum(np.random.default_rng(3).integers(0, 4, size=5_000)).astype(np.int64)
        relation = single_column_relation(values, "delta", block_size=5_000)
        result = relation.query().where(Between("x", 500, 900)).agg(n=Count()).execute()
        assert result.scalar("n") == int(((values >= 500) & (values <= 900)).sum())
        assert result.metrics.rows_decoded == 0
        assert result.metrics.rows_for_evaluated == values.size

    def test_non_monotonic_column_declines(self):
        values = np.array([5, 1, 9, 2, 8, 3] * 20, dtype=np.int64)
        relation = single_column_relation(values, "delta", block_size=values.size)
        block = relation.blocks[0]
        assert DEFAULT_KERNELS.predicate_mask(block, "x", Between("x", 2, 8)) is None
        result = relation.query().where(Between("x", 2, 8)).agg(n=Count()).execute()
        assert result.scalar("n") == int(((values >= 2) & (values <= 8)).sum())
        assert result.metrics.rows_decoded == values.size


class TestFrequencyKernel:
    def test_hot_value_evaluation_covers_exceptions(self):
        rng = np.random.default_rng(11)
        values = np.where(rng.random(3_000) < 0.9, 42, rng.integers(0, 500, 3_000)).astype(
            np.int64
        )
        relation = single_column_relation(values, "frequency", block_size=3_000)
        for predicate in (Eq("x", 42), Between("x", 40, 100), In("x", [41, 42, 43])):
            got = relation.query().where(predicate).agg(n=Count()).execute()
            want = relation.query(use_kernels=False).where(predicate).agg(n=Count()).execute()
            assert got.scalar("n") == want.scalar("n")
        result = relation.query().where(Eq("x", 42)).agg(n=Count()).execute()
        assert result.metrics.rows_decoded == 0
        assert result.metrics.rows_dict_evaluated == values.size


class TestParallelMaterialize:
    def test_workers_match_serial(self, rng):
        table = Table.from_columns(
            [(f"c{i}", INT64, rng.integers(0, 1_000, 4_000).astype(np.int64)) for i in range(4)]
        )
        relation = compress(table, block_size=500)
        selection = np.flatnonzero(rng.random(4_000) < 0.3)
        names = ["c0", "c2", "c3"]
        serial = materialize_columns(relation, names, selection, workers=1)
        threaded = materialize_columns(relation, names, selection, workers=3)
        for name in names:
            assert np.array_equal(np.asarray(serial[name]), np.asarray(threaded[name]))


class TestCoalescedReads:
    @pytest.fixture
    def table_path(self, rng, tmp_path):
        table = Table.from_columns(
            [(f"c{i}", INT64, rng.integers(0, 1_000, 2_000).astype(np.int64)) for i in range(6)]
        )
        relation = compress(table, block_size=500)
        path = tmp_path / "wide.corra"
        write_table(path, relation)
        return path, relation

    def test_adjacent_segments_merge_into_one_read(self, table_path):
        path, relation = table_path
        with DiskRelation(path, prefetch_workers=0) as disk:
            query = disk.query().where(Between("c0", 0, 2_000)).select("c1", "c2", "c3")
            result = query.execute()
            want = (
                relation.query().where(Between("c0", 0, 2_000)).select("c1", "c2", "c3").execute()
            )
            for name in ("c1", "c2", "c3"):
                assert np.array_equal(
                    np.asarray(result.columns[name]), np.asarray(want.columns[name])
                )
            # c1..c3 are byte-adjacent in every block: each block's three
            # segments coalesce into one ranged read (two reads saved).
            assert disk.io.reads_coalesced > 0
            assert disk.io.columns_read > disk.io.reads_coalesced

    def test_single_column_reads_never_coalesce(self, table_path):
        path, _ = table_path
        with DiskRelation(path, prefetch_workers=0) as disk:
            disk.query().where(Between("c0", 0, 2_000)).agg(n=Count()).execute()
            assert disk.io.reads_coalesced == 0

    def test_warm_cache_skips_the_coalesced_path(self, table_path):
        path, _ = table_path
        with DiskRelation(path, prefetch_workers=0) as disk:
            query = disk.query().where(Between("c0", 0, 2_000)).select("c1", "c2")
            query.execute()
            cold = disk.io.reads_coalesced
            assert cold > 0
            query.execute()
            assert disk.io.reads_coalesced == cold  # everything was cached
