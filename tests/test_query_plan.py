"""Tests for the lazy query API: logical plans, builder, compiler, pushdowns.

The property-based section checks three-way parity — lazy API ==
imperative ``QueryExecutor`` == a plain full-decode reference over the raw
table values — and serial == parallel, for randomized predicates
(including ``Not`` and string ``Between``) and randomized aggregates over
a relation mixing vertical encodings (FOR/delta/dictionary/RLE candidates)
with a diff-encoded horizontal column.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import DATE, INT64, STRING
from repro.errors import UnknownColumnError, ValidationError
from repro.query import (
    Aggregate,
    Avg,
    Between,
    Count,
    Eq,
    Filter,
    In,
    LazyQuery,
    Limit,
    Max,
    Min,
    Not,
    Or,
    Project,
    QueryCompiler,
    QueryExecutor,
    Scan,
    Sum,
    render_plan,
)
from repro.storage import BlockStatistics, ColumnStatistics, Table
from repro.storage.serialization import deserialize_block, serialize_block

TAGS = [f"tag_{i:02d}" for i in range(9)]
N_ROWS = 3_000
BLOCK_SIZE = 250


def _reference_table(seed: int = 23) -> Table:
    rng = np.random.default_rng(seed)
    ship = np.arange(N_ROWS, dtype=np.int64) + 8_000  # sorted (prunable)
    receipt = ship + rng.integers(1, 15, N_ROWS)  # diff-encodable
    v = rng.integers(0, 500, N_ROWS)  # unsorted ints
    runs = np.repeat(np.arange(N_ROWS // 100, dtype=np.int64), 100)  # RLE-ish
    tags = [TAGS[i] for i in rng.integers(0, len(TAGS), N_ROWS)]
    return Table.from_columns(
        [
            ("ship", DATE, ship),
            ("receipt", DATE, receipt),
            ("v", INT64, v),
            ("runs", INT64, runs),
            ("tag", STRING, tags),
        ]
    )


@pytest.fixture(scope="module")
def table() -> Table:
    return _reference_table()


@pytest.fixture(scope="module")
def relation(table):
    plan = (
        CompressionPlan.builder(table.schema)
        .diff_encode("receipt", reference="ship")
        .build()
    )
    return TableCompressor(plan, block_size=BLOCK_SIZE).compress(table)


def _raw_columns(table: Table) -> dict:
    return {name: table.column(name) for name in table.column_names}


def _reference_mask(table: Table, predicate) -> np.ndarray:
    """Full-decode reference: the predicate kernel over the raw columns."""
    return np.asarray(predicate.evaluate(_raw_columns(table)), dtype=bool)


# -- random predicate / aggregate strategies ----------------------------------

_int_leaves = st.one_of(
    st.builds(Eq, st.sampled_from(["v", "ship", "receipt", "runs"]), st.integers(-10, 9_100)),
    st.builds(
        lambda c, lo, hi: Between(c, min(lo, hi), max(lo, hi)),
        st.sampled_from(["v", "ship", "receipt"]),
        st.integers(-10, 9_100),
        st.integers(-10, 9_100),
    ),
    st.builds(In, st.just("v"), st.lists(st.integers(-10, 510), min_size=1, max_size=5)),
)
_string_leaves = st.one_of(
    st.builds(Eq, st.just("tag"), st.sampled_from(TAGS + ["absent"])),
    st.builds(
        lambda lo, hi: Between("tag", min(lo, hi), max(lo, hi)),
        st.sampled_from(TAGS + ["absent", "zzz"]),
        st.sampled_from(TAGS + ["absent", "zzz"]),
    ),
    st.builds(lambda hi: Between("tag", None, hi), st.sampled_from(TAGS)),
    st.builds(
        In, st.just("tag"),
        st.lists(st.sampled_from(TAGS + ["absent"]), min_size=1, max_size=4),
    ),
)
_predicates = st.recursive(
    st.one_of(_int_leaves, _string_leaves),
    lambda children: st.one_of(
        st.builds(lambda a, b: a & b, children, children),
        st.builds(lambda a, b: Or(a, b), children, children),
        st.builds(Not, children),
    ),
    max_leaves=4,
)
_aggregate_sets = st.lists(
    st.sampled_from(
        [
            ("n", Count()),
            ("total", Sum("v")),
            ("rsum", Sum("receipt")),
            ("lo", Min("ship")),
            ("hi", Max("receipt")),
            ("vmax", Max("v")),
            ("tmin", Min("tag")),
            ("mean", Avg("v")),
            ("rmean", Avg("receipt")),
        ]
    ),
    min_size=1,
    max_size=4,
    unique_by=lambda pair: pair[0],
)


def _reference_aggregate(table, mask, fn):
    if fn.kind == "count":
        return int(np.count_nonzero(mask))
    values = table.column(fn.column)
    if isinstance(values, np.ndarray):
        selected = values[mask]
        if fn.kind == "sum":
            return int(np.sum(selected, dtype=np.int64))
        if selected.size == 0:
            return None
        if fn.kind == "avg":
            return int(np.sum(selected, dtype=np.int64)) / int(selected.size)
        return int(selected.min()) if fn.kind == "min" else int(selected.max())
    selected = [value for value, keep in zip(values, mask) if keep]
    if not selected:
        return None
    return min(selected) if fn.kind == "min" else max(selected)


class TestLazyParity:
    """Lazy API == QueryExecutor == full-decode reference; serial == parallel."""

    @settings(max_examples=30, deadline=None)
    @given(predicate=_predicates)
    def test_filter_parity(self, relation, table, predicate):
        expected = np.flatnonzero(_reference_mask(table, predicate))
        executor_ids = QueryExecutor(relation).filter(predicate)
        lazy = relation.query().where(predicate).execute()
        assert np.array_equal(executor_ids, expected)
        assert np.array_equal(lazy.row_ids, expected)
        assert relation.query().where(predicate).count() == expected.size

    @settings(max_examples=25, deadline=None)
    @given(predicate=_predicates, aggs=_aggregate_sets)
    def test_aggregate_parity(self, relation, table, predicate, aggs):
        mask = _reference_mask(table, predicate)
        serial = relation.query().where(predicate).agg(**dict(aggs)).execute()
        parallel = relation.query(workers=4).where(predicate).agg(**dict(aggs)).execute()
        for name, fn in aggs:
            expected = _reference_aggregate(table, mask, fn)
            assert serial.scalar(name) == expected, fn.describe()
            assert parallel.scalar(name) == expected, fn.describe()

    @settings(max_examples=20, deadline=None)
    @given(predicate=_predicates)
    def test_group_by_parity(self, relation, table, predicate):
        mask = _reference_mask(table, predicate)
        result = relation.query().where(predicate).group_by("tag").agg(
            n=Count(), total=Sum("v"), first=Min("ship")
        ).execute()
        expected: dict[str, list] = {}
        for keep, tag, v, ship in zip(
            mask, table.column("tag"), table.column("v"), table.column("ship")
        ):
            if not keep:
                continue
            state = expected.setdefault(tag, [0, 0, None])
            state[0] += 1
            state[1] += int(v)
            state[2] = int(ship) if state[2] is None else min(state[2], int(ship))
        keys = sorted(expected)
        assert list(result.column("tag")) == keys
        assert list(result.column("n")) == [expected[k][0] for k in keys]
        assert list(result.column("total")) == [expected[k][1] for k in keys]
        assert list(result.column("first")) == [expected[k][2] for k in keys]
        # Parallel grouping merges the same per-block states in block order.
        parallel = relation.query(workers=4).where(predicate).group_by("tag").agg(
            n=Count(), total=Sum("v"), first=Min("ship")
        ).execute()
        assert parallel.columns == result.columns

    @settings(max_examples=20, deadline=None)
    @given(predicate=_predicates)
    def test_dictionary_and_statistics_toggles_agree(self, relation, predicate):
        baseline = relation.query(
            use_statistics=False, use_dictionary=False
        ).where(predicate).agg(n=Count(), total=Sum("v")).execute()
        tuned = relation.query().where(predicate).agg(n=Count(), total=Sum("v")).execute()
        assert tuned.scalar("n") == baseline.scalar("n")
        assert tuned.scalar("total") == baseline.scalar("total")

    def test_select_matches_executor_select(self, relation, table):
        predicate = Between("ship", 8_300, 8_700)
        lazy = relation.query().where(predicate).select("receipt", "tag").execute()
        imperative = QueryExecutor(relation).select(["receipt", "tag"], predicate)
        assert np.array_equal(lazy.row_ids, imperative.row_ids)
        assert np.array_equal(lazy.column("receipt"), imperative.column("receipt"))
        assert lazy.column("tag") == imperative.column("tag")


class TestAggregationPushdown:
    def test_count_over_covered_blocks_decodes_nothing(self, relation):
        # Block-aligned range: every block is either pruned or fully covered.
        query = relation.query().where(Between("ship", 8_250, 8_999))
        assert query.count() == 750
        metrics = query.last_metrics
        assert metrics.blocks_scanned == 0
        assert metrics.blocks_full == 3
        assert metrics.rows_decoded == 0
        assert metrics.rows_gathered == 0

    def test_sum_min_max_answered_from_statistics(self, relation, table):
        query = relation.query().where(Between("ship", 8_250, 8_999)).agg(
            total=Sum("v"), lo=Min("v"), hi=Max("v"), n=Count()
        )
        result = query.execute()
        mask = (table.column("ship") >= 8_250) & (table.column("ship") <= 8_999)
        selected = table.column("v")[mask]
        assert result.scalar("total") == int(selected.sum())
        assert result.scalar("lo") == int(selected.min())
        assert result.scalar("hi") == int(selected.max())
        assert result.scalar("n") == 750
        assert result.metrics.rows_decoded == 0
        assert result.metrics.rows_gathered == 0

    def test_derived_statistics_never_answer_min_max(self, relation):
        # receipt carries conservative (inexact) diff-derived bounds, so its
        # min/max aggregates must gather even over fully-covered blocks
        # (its sum, by contrast, is derived exactly — see TestDerivedDiffSum).
        result = relation.query().where(Between("ship", 8_250, 8_999)).agg(
            lo=Min("receipt")
        ).execute()
        assert result.metrics.rows_gathered == 750

    def test_diff_encoded_sums_answered_from_statistics(self, relation, table):
        # sum(receipt) = sum(ship) + sum(deltas) is recorded exactly at
        # compression time, so fully-covered blocks stat-answer it.
        result = relation.query().where(Between("ship", 8_250, 8_999)).agg(
            rsum=Sum("receipt")
        ).execute()
        mask = (table.column("ship") >= 8_250) & (table.column("ship") <= 8_999)
        assert result.scalar("rsum") == int(table.column("receipt")[mask].sum())
        assert result.metrics.rows_gathered == 0
        assert result.metrics.rows_decoded == 0

    def test_aggregate_without_predicate_covers_everything(self, relation, table):
        result = relation.query().agg(n=Count(), total=Sum("v")).execute()
        assert result.scalar("n") == N_ROWS
        assert result.scalar("total") == int(table.column("v").sum())
        assert result.metrics.blocks_full == relation.n_blocks
        assert result.metrics.rows_decoded == 0
        assert result.metrics.rows_gathered == 0

    def test_empty_selection_aggregates(self, relation):
        result = relation.query().where(Eq("v", -1)).agg(
            n=Count(), total=Sum("v"), lo=Min("v")
        ).execute()
        assert result.scalar("n") == 0
        assert result.scalar("total") == 0
        assert result.scalar("lo") is None

    def test_group_by_dictionary_column_stays_in_code_space(self, relation, table):
        result = relation.query().group_by("tag").agg(n=Count()).execute()
        n_groups = len(set(table.column("tag")))
        assert len(result.column("tag")) == n_groups
        # One heap decode per distinct group, regardless of block count.
        assert result.metrics.string_heap_decodes <= n_groups
        assert result.metrics.rows_gathered == 0

    def test_group_by_multiple_columns(self, relation, table):
        result = relation.query().group_by("tag", "runs").agg(n=Count()).execute()
        expected: dict = {}
        for tag, run in zip(table.column("tag"), table.column("runs")):
            key = (tag, int(run))
            expected[key] = expected.get(key, 0) + 1
        keys = sorted(expected)
        assert list(zip(result.column("tag"), result.column("runs"))) == keys
        assert list(result.column("n")) == [expected[k] for k in keys]


class TestProjectionAndLimitPushdown:
    def test_limit_truncates_before_materialisation(self, relation):
        query = relation.query().where(Between("ship", 8_000, 8_999)).select("tag").limit(7)
        result = query.execute()
        assert result.n_rows == 7
        assert len(result.column("tag")) == 7
        assert np.array_equal(result.row_ids, np.arange(7))

    def test_plan_without_projection_materialises_nothing(self, relation):
        compiler = QueryCompiler(relation)
        result = compiler.execute(Filter(Scan(relation), Between("ship", 8_100, 8_105)))
        assert result.columns == {}
        assert result.row_ids.size == 6

    def test_select_defaults_to_all_columns(self, relation, table):
        result = relation.query().where(Eq("ship", 8_123)).execute()
        assert set(result.columns) == set(table.column_names)
        assert result.n_rows == 1

    def test_limit_zero(self, relation):
        result = relation.query().select("v").limit(0).execute()
        assert result.n_rows == 0


class TestBuilderValidation:
    def test_select_and_agg_are_exclusive(self, relation):
        with pytest.raises(ValidationError):
            relation.query().select("v").agg(n=Count())
        with pytest.raises(ValidationError):
            relation.query().agg(n=Count()).select("v")

    def test_group_by_requires_aggregates(self, relation):
        with pytest.raises(ValidationError):
            relation.query().group_by("tag").logical_plan()

    def test_count_rejects_aggregate_chains(self, relation):
        with pytest.raises(ValidationError):
            relation.query().agg(n=Count()).count()

    def test_unknown_columns_are_rejected(self, relation):
        with pytest.raises(UnknownColumnError):
            relation.query().where(Eq("nope", 1)).count()
        with pytest.raises(UnknownColumnError):
            relation.query().select("nope").execute()
        with pytest.raises(UnknownColumnError):
            relation.query().agg(x=Sum("nope")).execute()

    def test_sum_of_string_column_is_rejected(self, relation):
        with pytest.raises(ValidationError):
            relation.query().agg(x=Sum("tag")).execute()

    def test_negative_limit_is_rejected(self, relation):
        with pytest.raises(ValidationError):
            relation.query().limit(-1)

    def test_agg_requires_aggregate_functions(self, relation):
        with pytest.raises(ValidationError):
            relation.query().agg(n=42)

    def test_compiler_rejects_foreign_relation(self, relation):
        other = TableCompressor(block_size=100).compress(_reference_table(seed=5))
        with pytest.raises(ValidationError):
            QueryCompiler(relation).execute(Project(Scan(other), ("v",)))

    def test_scalar_requires_single_row(self, relation):
        result = relation.query().group_by("tag").agg(n=Count()).execute()
        with pytest.raises(ValidationError):
            result.scalar("n")

    def test_result_rejects_unknown_output_column(self, relation):
        result = relation.query().agg(n=Count()).execute()
        with pytest.raises(UnknownColumnError):
            result.column("nope")

    def test_duplicate_output_names_are_rejected(self, relation):
        compiler = QueryCompiler(relation)
        plan = Aggregate(Scan(relation), (("tag", Count()),), group_by=("tag",))
        with pytest.raises(ValidationError):
            compiler.compile(plan)

    def test_duplicate_limit_nodes_are_rejected(self, relation):
        compiler = QueryCompiler(relation)
        plan = Limit(Limit(Project(Scan(relation), ("v",)), 3), 5)
        with pytest.raises(ValidationError):
            compiler.compile(plan)

    def test_out_of_order_nodes_are_rejected(self, relation):
        compiler = QueryCompiler(relation)
        # A Limit below an Aggregate ("count the first 10 matches") is not
        # what the flattened execution would compute, so it must not compile.
        inner_limit = Aggregate(
            Limit(Filter(Scan(relation), Eq("v", 1)), 10), (("n", Count()),)
        )
        with pytest.raises(ValidationError):
            compiler.compile(inner_limit)
        # A Filter above an Aggregate is HAVING: it compiles into the
        # dedicated having slot, not the scan predicate.
        having = Filter(Aggregate(Scan(relation), (("n", Count()),)), Eq("n", 1))
        compiled = compiler.compile(having)
        assert compiled.having is not None
        assert compiled.having.describe() == Eq("n", 1).describe()
        assert compiled.predicate is None
        # A Filter above a Limit is above where the flattened execution
        # could apply it.
        with pytest.raises(ValidationError):
            compiler.compile(Filter(Limit(Project(Scan(relation), ("v",)), 3), Eq("v", 1)))
        # A Filter above a Project would be reordered below it too.
        late_filter = Filter(Project(Scan(relation), ("v",)), Eq("v", 1))
        with pytest.raises(ValidationError):
            compiler.compile(late_filter)

    def test_chain_reuses_one_compiler_across_terminals(self, relation):
        base = relation.query()
        query = base.where(Between("ship", 8_250, 8_999))
        sibling = base.where(Eq("v", 1))  # diverged before any terminal
        assert query.count() == 750
        compiler = query._compiler_box[0]
        assert compiler is not None
        cached = compiler.planner.cached_decisions
        assert cached > 0
        assert query.count() == 750
        assert query._compiler_box[0] is compiler
        assert compiler.planner.cached_decisions == cached  # memo reused
        # Every link derived from the same root shares the one compiler,
        # including siblings that diverged before the first terminal ran.
        assert query.limit(5)._compiler_box[0] is compiler
        sibling.count()
        assert sibling._compiler_box[0] is compiler
        query.close()

    def test_count_honours_limit_like_execute(self, relation):
        query = relation.query().where(Between("ship", 8_000, 8_499)).limit(10)
        assert query.count() == 10
        assert query.execute().n_rows == 10
        # A limit larger than the match count changes nothing.
        assert relation.query().where(Eq("ship", 8_123)).limit(10).count() == 1

    def test_stacked_filters_become_a_conjunction(self, relation, table):
        compiler = QueryCompiler(relation)
        plan = Filter(
            Filter(Scan(relation), Between("ship", 8_100, 8_900)), Eq("tag", TAGS[0])
        )
        result = compiler.execute(plan)
        ship, tags = table.column("ship"), table.column("tag")
        expected = [
            i for i in range(N_ROWS)
            if 8_100 <= ship[i] <= 8_900 and tags[i] == TAGS[0]
        ]
        assert result.row_ids.tolist() == expected

    def test_group_by_without_dictionary_matches_code_space(self, relation):
        tuned = relation.query().group_by("tag").agg(n=Count(), hi=Max("v")).execute()
        decoded = (
            relation.query(use_dictionary=False)
            .group_by("tag")
            .agg(n=Count(), hi=Max("v"))
            .execute()
        )
        assert tuned.columns == decoded.columns
        assert decoded.metrics.string_heap_decodes >= relation.n_rows

    def test_explain_without_predicate(self, relation):
        text = relation.query().agg(n=Count()).explain()
        assert "predicate: (none" in text
        assert text.count("full") >= relation.n_blocks

    def test_compound_on_horizontal_column_charges_rows_once(self, relation, table):
        # receipt is diff-encoded against ship: a compound touching both
        # resolves the reference through the shared per-block cache, and
        # rows_decoded is charged once per scanned block, not per leaf.
        predicate = Between("receipt", 8_010, 10_990) & Between("ship", 8_005, 10_995)
        executor = QueryExecutor(relation, use_statistics=False)
        row_ids, metrics = executor.scan(predicate)
        mask = _reference_mask(table, predicate)
        assert np.array_equal(row_ids, np.flatnonzero(mask))
        assert metrics.rows_decoded == relation.n_rows


class TestExplainAndRendering:
    def test_explain_lists_logical_tree_and_decisions(self, relation):
        text = (
            relation.query()
            .where(Between("ship", 8_250, 8_999))
            .agg(n=Count())
            .limit(3)
            .explain()
        )
        assert "Limit [3]" in text
        assert "Aggregate [n=count(*)]" in text
        assert "Filter [8250 <= ship <= 8999]" in text
        assert "Scan [" in text
        assert "prune" in text and "full" in text
        assert "columns decoded at most: ship" in text

    def test_render_plan_orders_root_first(self, relation):
        plan = Limit(Aggregate(Scan(relation), (("n", Count()),)), 5)
        rendered = render_plan(plan)
        assert rendered.splitlines()[0].startswith("Limit")
        assert rendered.splitlines()[-1].strip().startswith("Scan")

    def test_executor_exposes_compiler(self, relation):
        executor = QueryExecutor(relation)
        assert executor.compiler.relation is relation

    def test_lazy_query_type(self, relation):
        assert isinstance(relation.query(), LazyQuery)


class TestNotPredicate:
    def _stats(self, lo, hi, exact=True):
        return BlockStatistics(
            {"c": ColumnStatistics(row_count=10, min_value=lo, max_value=hi, exact_bounds=exact)}
        )

    def test_prunes_only_when_child_is_provably_full(self):
        constant = self._stats(5, 5)
        assert not Not(Eq("c", 5)).might_match(constant)
        assert Not(Eq("c", 5)).might_match(self._stats(5, 6))
        # Derived bounds cannot prove the child full, so no pruning.
        assert Not(Between("c", 0, 10)).might_match(self._stats(5, 6, exact=False))

    def test_full_only_when_child_provably_empty(self):
        assert Not(Eq("c", 99)).matches_all(self._stats(5, 6))
        assert not Not(Eq("c", 5)).matches_all(self._stats(5, 6))
        assert not Not(Eq("c", 99)).matches_all(None)
        # A conservative range still proves absence soundly.
        assert Not(Eq("c", 99)).matches_all(self._stats(5, 6, exact=False))

    def test_invert_operator_and_double_negation(self):
        predicate = Eq("c", 5)
        negated = ~predicate
        assert isinstance(negated, Not)
        assert ~negated is predicate
        assert negated.describe() == "NOT (c == 5)"

    def test_fingerprint_tracks_child(self):
        assert Not(Eq("c", 5)).fingerprint() != Eq("c", 5).fingerprint()
        from repro.query import ColumnPredicate

        assert Not(ColumnPredicate("c", lambda v: v > 0)).fingerprint() is None

    def test_not_stays_in_code_space(self, relation):
        executor = QueryExecutor(relation)
        count = executor.count(Not(Eq("tag", TAGS[0])))
        metrics = executor.last_scan_metrics
        assert metrics.string_heap_decodes == 0
        assert metrics.rows_dict_evaluated == relation.n_rows
        without = QueryExecutor(relation, use_dictionary=False)
        assert without.count(Not(Eq("tag", TAGS[0]))) == count


class TestBetweenCodeSpace:
    def test_string_range_never_touches_the_heap(self, relation, table):
        predicate = Between("tag", TAGS[2], TAGS[6])
        executor = QueryExecutor(relation)
        count = executor.count(predicate)
        metrics = executor.last_scan_metrics
        assert count == sum(TAGS[2] <= t <= TAGS[6] for t in table.column("tag"))
        assert metrics.string_heap_decodes == 0
        assert metrics.rows_dict_evaluated == relation.n_rows
        assert executor.count(Between("tag", "zzz", None)) == 0

    def test_open_and_mistyped_bounds_match_decode_path(self, relation):
        with_dict = QueryExecutor(relation)
        without = QueryExecutor(relation, use_dictionary=False)
        for predicate in (
            Between("tag", None, TAGS[4]),
            Between("tag", TAGS[4], None),
            Between("tag", 3, 7),
            Between("tag", TAGS[1], 9),
        ):
            assert with_dict.count(predicate) == without.count(predicate)

    def test_int_dictionary_code_range(self):
        from repro.encodings.dictionary import DictEncodedIntColumn

        column = DictEncodedIntColumn(np.asarray([2, 4, 4, 8, 16]))
        assert column.lookup_code_range(3, 9) == (1, 3)
        assert column.lookup_code_range(None, 4) == (0, 2)
        assert column.lookup_code_range(5, None) == (2, 4)
        assert column.lookup_code_range(3.5, 8.5) == (1, 3)
        assert column.lookup_code_range("a", 9) == (0, 0)
        assert column.lookup_code_range(float("nan"), None) == (0, 0)
        lo, hi = column.lookup_code_range(100, 200)
        assert lo >= hi

    def test_string_heap_bisect(self):
        from repro.encodings.dictionary import DictEncodedStringColumn

        column = DictEncodedStringColumn(["b", "d", "d", "f"])
        assert column.lookup_code_range("a", "z") == (0, 3)
        assert column.lookup_code_range("c", "e") == (1, 2)
        assert column.lookup_code_range("b", "b") == (0, 1)
        assert column.lookup_code_range(1, "z") == (0, 0)
        heap = column.heap
        assert heap.bisect_left("d") == 1
        assert heap.bisect_right("d") == 2
        assert heap.key_bytes(0) == b"b"


class TestSumStatistic:
    def test_from_values_records_exact_sum(self):
        stats = ColumnStatistics.from_values(np.asarray([5, 1, 9], dtype=np.int64))
        assert stats.sum_value == 15
        assert stats.aggregate_value("sum") == 15
        assert stats.aggregate_value("count") == 3
        assert stats.aggregate_value("min") == 1
        assert stats.aggregate_value("max") == 9
        assert stats.aggregate_value("median") is None

    def test_string_and_derived_statistics_have_no_sum(self):
        assert ColumnStatistics.from_values(["a", "b"]).sum_value is None
        reference = ColumnStatistics.from_values(np.asarray([100, 200], dtype=np.int64))
        derived = ColumnStatistics.from_reference_and_deltas(reference, 1, 30, 2)
        assert derived.aggregate_value("sum") is None
        assert derived.aggregate_value("min") is None

    def test_serialization_roundtrip_preserves_sum(self, relation):
        block = relation.block(0)
        restored = deserialize_block(serialize_block(block))
        assert restored.statistics == block.statistics
        assert restored.statistics.column("v").sum_value is not None

    def test_legacy_statistics_dicts_without_sum_stay_readable(self):
        stats = ColumnStatistics.from_values(np.asarray([1, 2], dtype=np.int64))
        state = stats.to_dict()
        state.pop("sum_value")
        restored = ColumnStatistics.from_dict(state)
        assert restored.sum_value is None
        assert restored.min_value == 1


class TestAvgAggregate:
    def test_avg_matches_reference(self, relation, table):
        predicate = Between("v", 100, 300)
        result = relation.query().where(predicate).agg(mean=Avg("v")).execute()
        v = table.column("v")
        selected = v[(v >= 100) & (v <= 300)]
        assert result.scalar("mean") == selected.sum() / selected.size
        assert isinstance(result.scalar("mean"), float)

    def test_avg_answered_from_statistics_over_covered_blocks(self, relation, table):
        # Block-aligned range: avg = stat-answered sums / row counts, and the
        # diff-encoded receipt column is stat-answerable too.
        result = relation.query().where(Between("ship", 8_250, 8_999)).agg(
            mean=Avg("v"), rmean=Avg("receipt")
        ).execute()
        mask = (table.column("ship") >= 8_250) & (table.column("ship") <= 8_999)
        assert result.scalar("mean") == table.column("v")[mask].sum() / 750
        assert result.scalar("rmean") == table.column("receipt")[mask].sum() / 750
        assert result.metrics.rows_gathered == 0
        assert result.metrics.rows_decoded == 0

    def test_avg_of_empty_selection_is_none(self, relation):
        result = relation.query().where(Eq("v", -1)).agg(mean=Avg("v")).execute()
        assert result.scalar("mean") is None

    def test_grouped_avg_matches_python_reference(self, relation, table):
        result = relation.query().group_by("tag").agg(mean=Avg("v"), n=Count()).execute()
        expected: dict[str, list[int]] = {}
        for tag, value in zip(table.column("tag"), table.column("v")):
            expected.setdefault(tag, []).append(int(value))
        for tag, mean in zip(result.column("tag"), result.column("mean")):
            assert mean == sum(expected[tag]) / len(expected[tag])
        parallel = (
            relation.query(workers=4).group_by("tag").agg(mean=Avg("v"), n=Count()).execute()
        )
        assert parallel.columns == result.columns

    def test_avg_of_string_column_is_rejected(self, relation):
        with pytest.raises(ValidationError):
            relation.query().agg(mean=Avg("tag")).execute()

    def test_avg_needs_a_column(self):
        with pytest.raises(ValidationError):
            Avg("")

    def test_avg_survives_exact_partial_merges(self, relation, table):
        # Many blocks with different counts: the (sum, count) partials must
        # merge exactly instead of averaging the per-block averages.
        result = relation.query().where(Between("ship", 8_100, 8_905)).agg(
            mean=Avg("v")
        ).execute()
        ship = table.column("ship")
        mask = (ship >= 8_100) & (ship <= 8_905)
        selected = table.column("v")[mask]
        assert result.scalar("mean") == selected.sum() / selected.size


class TestDerivedDiffSum:
    def test_sum_differences_resolves_zigzag(self):
        from repro.core.diff_encoding import DiffEncodedColumn

        reference = np.arange(10, dtype=np.int64) * 10
        target = reference + np.asarray([-3, 5, -1, 2, 0, 7, -2, 4, 1, -6])
        column = DiffEncodedColumn(target, reference, "ref")
        assert column.uses_zigzag
        assert column.sum_differences() == int((target - reference).sum())

    def test_block_statistics_carry_exact_diff_sum(self, relation, table):
        for index, block in enumerate(relation.blocks):
            stats = block.column_statistics("receipt")
            start = index * BLOCK_SIZE
            chunk = table.column("receipt")[start : start + BLOCK_SIZE]
            assert stats.sum_value == int(chunk.sum())
            assert not stats.exact_bounds  # bounds stay conservative

    def test_outlier_rows_are_corrected(self):
        from repro.core import CompressionPlan, TableCompressor
        from repro.dtypes import INT64
        from repro.storage import Table

        rng = np.random.default_rng(3)
        base = np.arange(500, dtype=np.int64) + 1_000
        target = base + rng.integers(0, 4, 500)
        target[::50] += 1_000_000  # far outside any narrow bit budget
        t = Table.from_columns([("base", INT64, base), ("target", INT64, target)])
        plan = (
            CompressionPlan.builder(t.schema)
            .diff_encode("target", reference="base", outlier_bit_budget=2)
            .build()
        )
        block = TableCompressor(plan, block_size=500).compress(t).block(0)
        assert block.column("target").outliers.n_outliers > 0
        assert block.column_statistics("target").sum_value == int(target.sum())
