"""Column-granular storage tests: format v3 sub-segments, pruned I/O, prefetch.

The parity section drives randomized predicates, projections and aggregates
through v3 (column-granular), v2 (block-granular) and in-memory executions
of the same relation — over a column mix covering FOR/delta, RLE,
dictionary string, plus *horizontal* diff-encoded and hierarchical columns
— and asserts bit-identical results.  The closure section proves that
querying a horizontal column fetches its reference column's sub-segment
even when the query never names it, and nothing else.  The format section
checks the v3 footer round-trip, per-column CRC corruption detection (and
that corruption of one column leaves the others readable), the lazy
per-column zone-map parse, and the read-ahead pool's accounting.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64, STRING
from repro.errors import SerializationError
from repro.query import Avg, Between, Count, Eq, In, Max, Min, Not, Or, Sum
from repro.storage import (
    DiskRelation,
    LazyBlockStatistics,
    Table,
    TableReader,
    deserialize_column,
    serialize_block,
    serialize_block_with_layout,
    write_table,
)
from repro.storage.format import SUPPORTED_VERSIONS

CITIES = ["albany", "buffalo", "catskill", "delhi", "elmira", "fredonia"]
TAGS = [f"tag_{i:02d}" for i in range(9)]
N_ROWS = 3_000
BLOCK_SIZE = 250


def _mixed_table(seed: int = 31) -> Table:
    rng = np.random.default_rng(seed)
    ship = np.arange(N_ROWS, dtype=np.int64) + 8_000  # sorted (delta/FOR)
    receipt = ship + rng.integers(1, 15, N_ROWS)  # diff-encodable
    v = rng.integers(0, 500, N_ROWS)  # unsorted ints
    runs = np.repeat(np.arange(N_ROWS // 100, dtype=np.int64), 100)  # RLE-ish
    city_ids = rng.integers(0, len(CITIES), N_ROWS)
    cities = [CITIES[i] for i in city_ids]  # dictionary string
    zips = (city_ids + 1) * 10_000 + rng.integers(0, 50, N_ROWS)  # hierarchical
    tags = [TAGS[i] for i in rng.integers(0, len(TAGS), N_ROWS)]
    return Table.from_columns(
        [
            ("ship", INT64, ship),
            ("receipt", INT64, receipt),
            ("v", INT64, v),
            ("runs", INT64, runs),
            ("city", STRING, cities),
            ("zip", INT64, zips),
            ("tag", STRING, tags),
        ]
    )


@pytest.fixture(scope="module")
def table() -> Table:
    return _mixed_table()


@pytest.fixture(scope="module")
def relation(table):
    plan = (
        CompressionPlan.builder(table.schema)
        .diff_encode("receipt", reference="ship")
        .hierarchical_encode("zip", reference="city")
        .build()
    )
    return TableCompressor(plan, block_size=BLOCK_SIZE).compress(table)


@pytest.fixture(scope="module")
def paths(relation, tmp_path_factory):
    root = tmp_path_factory.mktemp("granular")
    files = {}
    for version in (2, 3):
        files[version] = root / f"mixed-v{version}.corra"
        write_table(files[version], relation, version=version)
    return files


@pytest.fixture(scope="module")
def disk_v3(paths):
    with DiskRelation(paths[3]) as rel:
        yield rel


@pytest.fixture(scope="module")
def disk_v2(paths):
    with DiskRelation(paths[2]) as rel:
        yield rel


_predicates = st.recursive(
    st.one_of(
        st.builds(
            Eq, st.sampled_from(["v", "ship", "receipt", "zip"]), st.integers(-10, 70_000)
        ),
        st.builds(
            lambda c, lo, hi: Between(c, min(lo, hi), max(lo, hi)),
            st.sampled_from(["v", "ship", "receipt", "zip"]),
            st.integers(-10, 70_000),
            st.integers(-10, 70_000),
        ),
        st.builds(In, st.just("v"), st.lists(st.integers(-10, 510), min_size=1, max_size=5)),
        st.builds(Eq, st.just("city"), st.sampled_from(CITIES + ["nowhere"])),
        st.builds(
            In, st.just("tag"),
            st.lists(st.sampled_from(TAGS + ["absent"]), min_size=1, max_size=4),
        ),
    ),
    lambda children: st.one_of(
        st.builds(lambda a, b: a & b, children, children),
        st.builds(lambda a, b: Or(a, b), children, children),
        st.builds(Not, children),
    ),
    max_leaves=4,
)
_projections = st.lists(
    st.sampled_from(["ship", "receipt", "v", "runs", "city", "zip", "tag"]),
    min_size=1,
    max_size=3,
    unique=True,
)
_aggregate_sets = st.lists(
    st.sampled_from(
        [
            ("n", Count()),
            ("total", Sum("v")),
            ("rsum", Sum("receipt")),
            ("zsum", Sum("zip")),
            ("mean", Avg("receipt")),
            ("lo", Min("ship")),
            ("hi", Max("zip")),
        ]
    ),
    min_size=1,
    max_size=4,
    unique_by=lambda pair: pair[0],
)


class TestColumnPrunedParity:
    """v3 column-pruned execution == v2 block execution == in-memory."""

    @settings(max_examples=25, deadline=None)
    @given(predicate=_predicates, projection=_projections)
    def test_select_parity(self, relation, disk_v2, disk_v3, predicate, projection):
        expected = relation.query().where(predicate).select(*projection).execute()
        for disk in (disk_v2, disk_v3):
            actual = disk.query().where(predicate).select(*projection).execute()
            assert np.array_equal(actual.row_ids, expected.row_ids)
            for name in projection:
                expected_values = expected.column(name)
                if isinstance(expected_values, np.ndarray):
                    assert np.array_equal(actual.column(name), expected_values)
                else:
                    assert actual.column(name) == expected_values

    @settings(max_examples=20, deadline=None)
    @given(predicate=_predicates, aggs=_aggregate_sets)
    def test_aggregate_parity(self, relation, disk_v2, disk_v3, predicate, aggs):
        expected = relation.query().where(predicate).agg(**dict(aggs)).execute()
        for disk in (disk_v2, disk_v3):
            serial = disk.query().where(predicate).agg(**dict(aggs)).execute()
            parallel = disk.query(workers=4).where(predicate).agg(**dict(aggs)).execute()
            for name, fn in aggs:
                assert serial.scalar(name) == expected.scalar(name), fn.describe()
                assert parallel.scalar(name) == expected.scalar(name), fn.describe()

    @settings(max_examples=10, deadline=None)
    @given(predicate=_predicates)
    def test_group_by_parity(self, relation, disk_v3, predicate):
        expected = (
            relation.query().where(predicate).group_by("city").agg(n=Count(), z=Sum("zip"))
        ).execute()
        actual = (
            disk_v3.query().where(predicate).group_by("city").agg(n=Count(), z=Sum("zip"))
        ).execute()
        assert actual.columns == expected.columns

    @settings(max_examples=10, deadline=None)
    @given(predicate=_predicates, projection=_projections)
    def test_tiny_cache_and_no_prefetch_stay_correct(
        self, paths, relation, predicate, projection
    ):
        expected = relation.query().where(predicate).select(*projection).execute()
        with DiskRelation(paths[3], cache_bytes=1, prefetch_workers=0) as starved:
            actual = starved.query().where(predicate).select(*projection).execute()
            assert np.array_equal(actual.row_ids, expected.row_ids)
            assert len(starved.cache) == 0


class TestDependencyClosure:
    """Horizontal columns fetch their reference sub-segments — nothing more."""

    def test_diff_projection_reads_reference_closure(self, paths, table):
        with DiskRelation(paths[3], prefetch_workers=0) as fresh:
            result = fresh.query().select("receipt").limit(400).execute()
            assert np.array_equal(
                result.column("receipt"), np.asarray(table.column("receipt"))[:400]
            )
            # The diff-encoded target needs its reference column 'ship' even
            # though the query never names it; no other column moves.
            read = {
                name
                for i in range(fresh.n_blocks)
                for name in fresh.schema.names
                if fresh.is_column_cached(i, name)
            }
            assert read == {"receipt", "ship"}
            assert fresh.io.blocks_read == 0

    def test_hierarchical_projection_reads_reference_closure(self, paths, table):
        with DiskRelation(paths[3], prefetch_workers=0) as fresh:
            result = fresh.query().select("zip").limit(400).execute()
            assert np.array_equal(
                result.column("zip"), np.asarray(table.column("zip"))[:400]
            )
            read = {
                name
                for i in range(fresh.n_blocks)
                for name in fresh.schema.names
                if fresh.is_column_cached(i, name)
            }
            assert read == {"zip", "city"}

    def test_closure_resolved_from_footer_metadata(self, disk_v3):
        # No I/O: the dependency closure comes from the footer's column index.
        before = disk_v3.io.bytes_read
        assert disk_v3.column_closure(0, ["receipt"]) == ("receipt", "ship")
        assert disk_v3.column_closure(0, ["zip", "v"]) == ("zip", "city", "v")
        assert disk_v3.column_closure(0, ["ship"]) == ("ship",)
        block = disk_v3.blocks[0]
        assert block.dependency("receipt").references == ("ship",)
        assert block.dependency("v") is None
        assert block.is_horizontal("zip")
        assert not block.is_horizontal("tag")
        assert disk_v3.io.bytes_read == before

    def test_predicate_on_horizontal_column_stays_column_granular(self, paths, relation):
        predicate = Between("receipt", 8_500, 8_700)
        expected = relation.query().where(predicate).count()
        with DiskRelation(paths[3], prefetch_workers=0) as fresh:
            assert fresh.query().where(predicate).count() == expected
            assert fresh.io.blocks_read == 0
            assert 0 < fresh.io.column_bytes_read < fresh.io.column_block_bytes


class TestFormatV3:
    def test_footer_indexes_every_column_span(self, paths, relation):
        with TableReader(paths[3]) as reader:
            assert reader.column_granular
            for index, block in enumerate(relation):
                entry = reader.block_entry(index)
                payload, spans = serialize_block_with_layout(block)
                assert payload == serialize_block(block)
                assert set(entry.columns) == set(block.columns)
                for name, (offset, length) in spans.items():
                    segment = entry.columns[name]
                    assert (segment.offset, segment.length) == (offset, length)
                    assert segment.checksum == zlib.crc32(
                        payload[offset : offset + length]
                    )
                    stored_name, dependency, encoded = deserialize_column(
                        payload[offset : offset + length]
                    )
                    assert stored_name == name
                    assert dependency == block.dependency(name)
                    assert encoded.n_values == block.n_rows

    def test_read_column_matches_full_block(self, paths, relation):
        with TableReader(paths[3]) as reader:
            block = reader.read_block(0)
            for name in relation.schema.names:
                encoded, dependency = reader.read_column(0, name)
                assert type(encoded) is type(block.column(name))
                assert dependency == block.dependency(name)

    @pytest.mark.parametrize("version", SUPPORTED_VERSIONS)
    def test_column_index_presence_by_version(self, relation, tmp_path, version):
        path = tmp_path / f"v{version}.corra"
        footer = write_table(path, relation, version=version)
        for entry in footer.blocks:
            assert (entry.columns is not None) == (version >= 3)
        with TableReader(path) as reader:
            for index in range(reader.n_blocks):
                entry = reader.block_entry(index)
                assert (entry.columns is not None) == (version >= 3)
                restored = reader.read_block(index)
                assert restored.column_names == relation.block(index).column_names

    def test_column_crc_detects_corruption_and_isolates_it(self, paths, relation, tmp_path):
        source = paths[3].read_bytes()
        path = tmp_path / "corrupt-column.corra"
        path.write_bytes(source)
        with TableReader(paths[3]) as reader:
            entry = reader.block_entry(0)
        segment = entry.columns["v"]
        data = bytearray(source)
        # Flip one byte in the middle of block 0's 'v' sub-segment.
        target = entry.offset + segment.offset + segment.length // 2
        data[target] ^= 0xFF
        path.write_bytes(bytes(data))
        with TableReader(path) as reader:
            with pytest.raises(SerializationError, match="checksum"):
                reader.read_column(0, "v")
            # The whole-block checksum catches it too ...
            with pytest.raises(SerializationError, match="checksum"):
                reader.read_block(0)
        # ... but other columns' sub-segments stay readable: a query that
        # never touches 'v' is unaffected by the corruption.
        with DiskRelation(path, prefetch_workers=0) as fresh:
            expected = relation.query().where(Between("ship", 8_000, 8_100)).count()
            assert fresh.query().where(Between("ship", 8_000, 8_100)).count() == expected
            with pytest.raises(SerializationError, match="checksum"):
                fresh.query().where(Between("v", 0, 250)).count()

    def test_lazy_zone_maps_parse_per_column(self, paths):
        with DiskRelation(paths[3]) as fresh:
            statistics = fresh.footer.blocks[0].statistics
            assert isinstance(statistics, LazyBlockStatistics)
            assert statistics.parsed_column_names == ()
            fresh.query().where(Between("ship", 8_000, 8_100)).explain()
            # Planning the predicate parsed its column's zone map — only it.
            parsed = set()
            for entry in fresh.footer.blocks:
                parsed.update(entry.statistics.parsed_column_names)
            assert parsed == {"ship"}

    def test_lazy_zone_maps_round_trip_whole_map(self, paths, relation):
        with TableReader(paths[3]) as reader:
            for index, block in enumerate(relation):
                assert reader.block_entry(index).statistics == block.statistics


class TestIOAccountingLifecycle:
    def test_reset_restarts_column_accounting(self, paths):
        with DiskRelation(paths[3], cache_bytes=0, prefetch_workers=0) as fresh:
            fresh.query().where(Between("ship", 8_000, 8_100)).count()
            assert fresh.io.columns_skipped >= 0
            fresh.io.reset()
            # A column of an already-touched block read after reset() must
            # restart the skipped/available baseline, not go negative.
            fresh.query().where(Between("v", 0, 250)).count()
            assert fresh.io.columns_skipped >= 0
            assert fresh.io.column_block_bytes > 0
            assert fresh.io.column_bytes_read <= fresh.io.column_block_bytes

    def test_is_block_cached_reflects_full_column_residency(self, paths):
        with DiskRelation(paths[3], prefetch_workers=0) as fresh:
            assert not fresh.is_block_cached(0)
            fresh.blocks[0].decode_column("v")
            assert not fresh.is_block_cached(0)  # one column resident
            for name in fresh.schema.names:
                fresh.blocks[0].column(name)
            # Every column entry resident == the block is resident, even
            # though no whole-block cache entry exists on a v3 table.
            assert fresh.is_block_cached(0)
            assert fresh.blocks[0].is_loaded


class TestReadAhead:
    def test_prefetch_overlaps_and_counts_hits(self, paths, relation):
        predicate = Between("v", 0, 250)  # unsorted: every block scans
        expected = relation.query().where(predicate).count()
        with DiskRelation(paths[3]) as fresh:
            assert fresh.query().where(predicate).count() == expected
            # Every block but the first was hinted ahead of its kernel.
            assert fresh.io.prefetch_issued > 0
            assert fresh.io.prefetch_hits <= fresh.io.prefetch_issued
            # Prefetch must not inflate I/O: exactly one 'v' segment read
            # per block, demand or read-ahead.
            assert fresh.io.columns_read == fresh.n_blocks

    def test_no_prefetch_disables_pool_and_counters(self, paths):
        with DiskRelation(paths[3], prefetch_workers=0) as fresh:
            fresh.query().where(Between("v", 0, 250)).count()
            assert fresh.io.prefetch_issued == 0
            assert fresh.io.prefetch_hits == 0
            assert not fresh.prefetch_block_columns(0, ("v",))

    def test_prefetch_hints_are_dropped_not_queued(self, paths):
        with DiskRelation(paths[3]) as fresh:
            fresh.prefetch_block_columns(0, ("v",))
            fresh.close()  # drains the pool; the fetch (if scheduled) completed
            # A closed relation refuses hints, as do out-of-range blocks and
            # (below, on a live relation) already-resident segments.
            assert not fresh.prefetch_block_columns(0, ("v",))
            assert not fresh.prefetch_block_columns(10_000, ("v",))
        with DiskRelation(paths[3], prefetch_workers=1) as live:
            live.blocks[0].decode_column("v")  # demand-load, now resident
            assert not live.prefetch_block_columns(0, ("v",))
