"""Integration tests: full pipeline from dataset generation to query output.

These tests run the whole stack the way the examples and benchmarks do:
generate a synthetic dataset, detect/choose a plan, compress into blocks,
serialise and restore, query with selection vectors, and compare against the
uncompressed ground truth.
"""

import numpy as np
import pytest

from repro import (
    CompressionPlan,
    CorrelationDetector,
    QueryExecutor,
    SingleColumnBaseline,
    TableCompressor,
    TpchLineitemGenerator,
    deserialize_block,
    serialize_block,
)
from repro.baselines import UncompressedBaseline
from repro.datasets import (
    DmvGenerator,
    LdbcMessageGenerator,
    TaxiGenerator,
    taxi_multi_reference_config,
)
from repro.query import Predicate, generate_selection_vectors, materialize_columns


class TestTpchPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        table = TpchLineitemGenerator().generate_dates_only(30_000, seed=21)
        plan = (
            CompressionPlan.builder(table.schema)
            .diff_encode("l_commitdate", reference="l_shipdate")
            .diff_encode("l_receiptdate", reference="l_shipdate")
            .build()
        )
        relation = TableCompressor(plan, block_size=8_192).compress(table)
        return table, relation

    def test_compression_beats_baseline(self, setup):
        table, relation = setup
        baseline = SingleColumnBaseline().report(table)
        assert relation.column_size("l_receiptdate") < 0.5 * baseline.size_of("l_receiptdate")
        assert relation.column_size("l_commitdate") < 0.7 * baseline.size_of("l_commitdate")

    def test_every_selectivity_roundtrips(self, setup):
        table, relation = setup
        for selectivity in (0.001, 0.01, 0.1, 1.0):
            vector = generate_selection_vectors(table.n_rows, selectivity, 1, seed=5)[0]
            out = materialize_columns(relation, ["l_shipdate", "l_receiptdate"], vector)
            for name in ("l_shipdate", "l_receiptdate"):
                assert np.array_equal(out[name], table.column(name)[vector.row_ids])

    def test_blocks_survive_serialisation(self, setup):
        table, relation = setup
        block = relation.block(1)
        restored = deserialize_block(serialize_block(block))
        start = relation.block_size
        end = start + block.n_rows
        assert np.array_equal(
            restored.decode_column("l_receiptdate"),
            table.column("l_receiptdate")[start:end],
        )

    def test_predicate_query_on_compressed_relation(self, setup):
        table, relation = setup
        executor = QueryExecutor(relation)
        ship = table.column("l_shipdate")
        lo, hi = int(np.quantile(ship, 0.4)), int(np.quantile(ship, 0.6))
        result = executor.select(["l_receiptdate"], Predicate.between("l_shipdate", lo, hi))
        expected_rows = np.flatnonzero((ship >= lo) & (ship <= hi))
        assert np.array_equal(result.row_ids, expected_rows)
        assert np.array_equal(
            result.column("l_receiptdate"), table.column("l_receiptdate")[expected_rows]
        )


class TestAutoPlanPipeline:
    def test_detector_driven_plan_roundtrips(self):
        table = TpchLineitemGenerator().generate_dates_only(15_000, seed=3)
        suggestions = CorrelationDetector().suggest(table)
        plan = CompressionPlan.from_suggestions(table.schema, suggestions)
        assert plan.horizontal_columns()  # something was detected
        relation = TableCompressor(plan, block_size=4_096).compress(table)
        for name in table.column_names:
            restored = np.concatenate([b.decode_column(name) for b in relation])
            assert np.array_equal(restored, table.column(name))


class TestHierarchicalPipeline:
    def test_dmv_zip_pipeline(self):
        table = DmvGenerator().generate_pair_only(20_000, seed=17)
        plan = (
            CompressionPlan.builder(table.schema)
            .hierarchical_encode("zip_code", reference="city")
            .build()
        )
        relation = TableCompressor(plan, block_size=6_000).compress(table)
        vector = generate_selection_vectors(table.n_rows, 0.05, 1, seed=1)[0]
        out = materialize_columns(relation, ["city", "zip_code"], vector)
        expected_zip = np.asarray(table.column("zip_code"))[vector.row_ids]
        assert np.array_equal(out["zip_code"], expected_zip)
        expected_city = [table.column("city")[int(i)] for i in vector.row_ids]
        assert out["city"] == expected_city

    def test_ldbc_ip_pipeline(self):
        table = LdbcMessageGenerator().generate_pair_only(20_000, seed=17)
        plan = (
            CompressionPlan.builder(table.schema)
            .hierarchical_encode("ip", reference="countryid")
            .build()
        )
        # A single block: per-block hierarchical metadata is only amortised at
        # realistic block fill levels (the paper uses 1 M-tuple blocks).
        relation = TableCompressor(plan, block_size=20_000).compress(table)
        baseline = SingleColumnBaseline().report(table)
        assert relation.column_size("ip") < baseline.size_of("ip")
        vector = generate_selection_vectors(table.n_rows, 0.01, 1, seed=2)[0]
        out = materialize_columns(relation, ["ip"], vector)
        expected = [table.column("ip")[int(i)] for i in vector.row_ids]
        assert out["ip"] == expected


class TestTaxiPipeline:
    def test_multi_reference_pipeline(self):
        table = TaxiGenerator().generate_monetary_only(25_000, seed=29)
        config = taxi_multi_reference_config()
        plan = (
            CompressionPlan.builder(table.schema)
            .multi_reference_encode("total_amount", config)
            .build()
        )
        relation = TableCompressor(plan, block_size=10_000).compress(table)
        baseline = SingleColumnBaseline().report(table)
        assert relation.column_size("total_amount") < 0.4 * baseline.size_of("total_amount")
        vector = generate_selection_vectors(table.n_rows, 0.02, 1, seed=3)[0]
        out = materialize_columns(relation, ["total_amount"], vector)
        assert np.array_equal(
            out["total_amount"], table.column("total_amount")[vector.row_ids]
        )

    def test_uncompressed_baseline_agrees(self):
        table = TaxiGenerator().generate_monetary_only(10_000, seed=29)
        uncompressed = UncompressedBaseline(block_size=4_000).compress(table)
        config = taxi_multi_reference_config()
        plan = (
            CompressionPlan.builder(table.schema)
            .multi_reference_encode("total_amount", config)
            .build()
        )
        corra = TableCompressor(plan, block_size=4_000).compress(table)
        vector = generate_selection_vectors(table.n_rows, 0.1, 1, seed=4)[0]
        a = materialize_columns(uncompressed, ["total_amount"], vector)
        b = materialize_columns(corra, ["total_amount"], vector)
        assert np.array_equal(a["total_amount"], b["total_amount"])
