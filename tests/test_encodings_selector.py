"""Unit tests for the best-of single-column selector (the paper's baseline)."""

import numpy as np
import pytest

from repro.dtypes import INT64, STRING
from repro.encodings import (
    BestOfSelector,
    DeltaEncoding,
    ForBitPackEncoding,
    all_schemes,
    default_random_access_schemes,
    scheme_by_name,
)
from repro.errors import EncodingError, UnknownEncodingError


class TestDefaults:
    def test_default_candidates_are_for_and_dict(self):
        names = {s.name for s in default_random_access_schemes()}
        assert names == {"for_bitpack", "dictionary"}

    def test_all_schemes_cover_the_registry(self):
        names = {s.name for s in all_schemes()}
        assert {"plain", "for_bitpack", "dictionary", "delta", "rle",
                "frequency", "fsst"} <= names

    def test_scheme_by_name(self):
        assert scheme_by_name("rle").name == "rle"

    def test_scheme_by_name_unknown(self):
        with pytest.raises(UnknownEncodingError):
            scheme_by_name("zstd")


class TestSelection:
    def test_narrow_range_prefers_for(self, rng):
        values = rng.integers(1_000_000, 1_000_100, size=5_000, dtype=np.int64)
        result = BestOfSelector().select(values, INT64)
        assert result.scheme_name == "for_bitpack"

    def test_low_cardinality_wide_range_prefers_dictionary(self, rng):
        values = rng.choice(
            np.array([1, 10**12, -5 * 10**11], dtype=np.int64), size=5_000
        )
        result = BestOfSelector().select(values, INT64)
        assert result.scheme_name == "dictionary"

    def test_strings_fall_back_to_dictionary(self):
        result = BestOfSelector().select(["a", "b", "a"] * 100, STRING)
        assert result.scheme_name == "dictionary"

    def test_candidate_sizes_recorded(self, rng):
        values = rng.integers(0, 50, size=1_000, dtype=np.int64)
        result = BestOfSelector().select(values, INT64)
        assert set(result.candidate_sizes) == {"for_bitpack", "dictionary"}
        assert result.size_bytes == min(result.candidate_sizes.values())

    def test_roundtrip_of_selected_column(self, rng):
        values = rng.integers(0, 50, size=1_000, dtype=np.int64)
        result = BestOfSelector().select(values, INT64)
        assert np.array_equal(result.column.decode(), values)

    def test_best_size_matches_select(self, rng):
        values = rng.integers(0, 1_000, size=2_000, dtype=np.int64)
        selector = BestOfSelector()
        assert selector.best_size(values, INT64) == selector.select(values, INT64).size_bytes

    def test_custom_candidate_set(self):
        values = np.arange(10_000, dtype=np.int64)
        selector = BestOfSelector([ForBitPackEncoding(), DeltaEncoding()])
        result = selector.select(values, INT64)
        assert result.scheme_name == "delta"

    def test_no_applicable_scheme_raises(self):
        selector = BestOfSelector([ForBitPackEncoding()])
        with pytest.raises(EncodingError):
            selector.select(["a"], STRING)

    def test_empty_candidate_set_rejected(self):
        with pytest.raises(EncodingError):
            BestOfSelector([])
