"""Unit tests for automatic correlation detection (future-work extension)."""

import numpy as np
import pytest

from repro.core import (
    CorrelationDetector,
    arithmetic_rule_coverage,
    bounded_difference_score,
    hierarchy_score,
)
from repro.datasets import TaxiGenerator, TpchLineitemGenerator, taxi_multi_reference_config
from repro.errors import ValidationError


class TestBoundedDifferenceScore:
    def test_correlated_pair_saves_bits(self, rng):
        base = rng.integers(10**6, 2 * 10**6, size=2_000, dtype=np.int64)
        target = base + rng.integers(0, 30, size=2_000, dtype=np.int64)
        score = bounded_difference_score(target, base)
        assert score["diff_bits"] <= 5
        assert score["bits_saved_per_row"] > 10

    def test_uncorrelated_pair_saves_nothing(self, rng):
        a = rng.integers(0, 2**20, size=2_000, dtype=np.int64)
        b = rng.integers(0, 2**20, size=2_000, dtype=np.int64)
        score = bounded_difference_score(a, b)
        assert score["bits_saved_per_row"] <= 1

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            bounded_difference_score(np.arange(3), np.arange(4))

    def test_empty_input(self):
        score = bounded_difference_score(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert score["bits_saved_per_row"] == 0


class TestHierarchyScore:
    def test_city_zip_pair(self, city_zip_table):
        score = hierarchy_score(
            city_zip_table.column("zip_code"), city_zip_table.column("city")
        )
        assert score["global_distinct"] == 5
        assert score["max_group_distinct"] == 2
        assert score["n_groups"] == 3
        assert score["bits_saved_per_row"] == 2  # 3 bits -> 1 bit

    def test_no_hierarchy(self, rng):
        a = rng.integers(0, 1_000, size=2_000, dtype=np.int64)
        b = rng.integers(0, 3, size=2_000, dtype=np.int64)
        score = hierarchy_score(a, b)
        assert score["bits_saved_per_row"] <= 1

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            hierarchy_score([1, 2], [1])


class TestArithmeticRuleCoverage:
    def test_taxi_coverage(self):
        taxi = TaxiGenerator().generate_monetary_only(20_000, seed=5)
        config = taxi_multi_reference_config()
        references = {name: taxi.column(name) for name in config.reference_columns}
        coverage = arithmetic_rule_coverage(
            taxi.column("total_amount"), references, config
        )
        assert coverage["outlier_fraction"] == pytest.approx(0.0032, abs=0.003)
        assert sum(coverage["rule_coverage"].values()) == pytest.approx(
            1.0 - coverage["outlier_fraction"]
        )


class TestCorrelationDetector:
    def test_detects_tpch_date_correlations(self):
        dates = TpchLineitemGenerator().generate_dates_only(20_000, seed=9)
        detector = CorrelationDetector()
        best = detector.best_per_target(dates)
        assert "l_receiptdate" in best
        assert best["l_receiptdate"].kind == "non_hierarchical"
        assert best["l_receiptdate"].references == ("l_shipdate",)

    def test_detects_hierarchy(self, city_zip_table):
        detector = CorrelationDetector(min_saving_rate=0.01)
        suggestions = detector.suggest(city_zip_table)
        kinds = {(s.kind, s.target) for s in suggestions}
        assert ("hierarchical", "zip_code") in kinds

    def test_suggestions_sorted_by_saving(self, small_int_table):
        detector = CorrelationDetector(min_saving_rate=0.0)
        suggestions = detector.suggest(small_int_table)
        savings = [s.estimated_saving_bytes for s in suggestions]
        assert savings == sorted(savings, reverse=True)

    def test_no_suggestions_for_uncorrelated_data(self, rng):
        from repro.dtypes import INT64
        from repro.storage import Table

        table = Table.from_columns(
            [
                ("a", INT64, rng.integers(0, 2**30, size=3_000, dtype=np.int64)),
                ("b", INT64, rng.integers(0, 2**30, size=3_000, dtype=np.int64)),
            ]
        )
        suggestions = CorrelationDetector(min_saving_rate=0.05).suggest(table)
        assert all(s.kind != "non_hierarchical" for s in suggestions)

    def test_sampling_caps_inspected_rows(self, small_int_table):
        detector = CorrelationDetector(sample_rows=100, min_saving_rate=0.0)
        suggestions = detector.suggest(small_int_table)
        assert suggestions  # still finds the shifted/base correlation

    def test_suggestion_str(self, small_int_table):
        detector = CorrelationDetector(min_saving_rate=0.0)
        suggestions = detector.suggest(small_int_table)
        assert any("non_hierarchical" in str(s) for s in suggestions)
