"""Unit tests for the hierarchical encoding (paper §2.2, Fig. 3)."""

import numpy as np
import pytest

from repro.core import HierarchicalEncoding
from repro.errors import DecodingError, EncodingError


class TestPaperFigure3Example:
    """The exact example from Fig. 3 of the paper."""

    CITIES = ["Cortland", "Naples", "Naples", "Naples", "NYC", "NYC"]
    ZIPS = np.array([13045, 34102, 34112, 34102, 10016, 10001], dtype=np.int64)

    def _column(self):
        return HierarchicalEncoding().encode(self.ZIPS, self.CITIES, "city")

    def test_roundtrip(self):
        column = self._column()
        decoded = column.decode_with_reference({"city": self.CITIES})
        assert np.array_equal(decoded, self.ZIPS)

    def test_group_structure(self):
        column = self._column()
        assert column.n_groups == 3            # Cortland, Naples, NYC
        assert column.n_distinct_targets == 5  # the "zip_codes" array of Fig. 3
        assert column.max_group_fanout == 2    # Naples and NYC have two zips each

    def test_code_width_is_group_local(self):
        column = self._column()
        # Two zips per city at most -> 1 bit per row instead of 3+ bits.
        assert column.code_bit_width == 1

    def test_gather_subset(self):
        column = self._column()
        pos = np.array([1, 3, 5], dtype=np.int64)
        cities = [self.CITIES[i] for i in pos]
        assert np.array_equal(
            column.gather_with_reference(pos, {"city": cities}), self.ZIPS[pos]
        )


class TestIntegerReference:
    def test_country_ip_style_pair(self, rng):
        countries = rng.integers(0, 20, size=3_000, dtype=np.int64)
        ips = countries * 1_000 + rng.integers(0, 50, size=3_000, dtype=np.int64)
        column = HierarchicalEncoding().encode(ips, countries, "country")
        decoded = column.decode_with_reference({"country": countries})
        assert np.array_equal(decoded, ips)
        assert column.code_bit_width <= 6  # <= 50 distinct per group
        assert column.n_groups == len(np.unique(countries))

    def test_unseen_reference_value_rejected(self, rng):
        countries = rng.integers(0, 5, size=100, dtype=np.int64)
        ips = countries * 10
        column = HierarchicalEncoding().encode(ips, countries, "country")
        with pytest.raises(DecodingError):
            column.gather_with_reference(
                np.array([0]), {"country": np.array([99], dtype=np.int64)}
            )


class TestStringTarget:
    def test_string_dependent_values(self, rng):
        countries = rng.integers(0, 4, size=400, dtype=np.int64)
        ips = [f"10.{c}.0.{i % 8}" for i, c in enumerate(countries)]
        column = HierarchicalEncoding().encode(ips, countries, "countryid")
        decoded = column.decode_with_reference({"countryid": countries})
        assert decoded == ips

    def test_string_target_size_includes_heap(self, rng):
        countries = rng.integers(0, 4, size=400, dtype=np.int64)
        ips = [f"10.{c}.0.{i % 8}" for i, c in enumerate(countries)]
        column = HierarchicalEncoding().encode(ips, countries, "countryid")
        assert column.metadata_size_bytes > 0
        assert column.size_bytes > column.metadata_size_bytes


class TestValidationAndEdgeCases:
    def test_length_mismatch(self):
        with pytest.raises(EncodingError):
            HierarchicalEncoding().encode([1, 2, 3], ["a", "b"], "ref")

    def test_decode_without_reference_raises(self, city_zip_table):
        column = HierarchicalEncoding().encode(
            city_zip_table.column("zip_code"), city_zip_table.column("city"), "city"
        )
        with pytest.raises(DecodingError):
            column.decode()

    def test_unseen_string_reference_rejected(self):
        column = HierarchicalEncoding().encode(
            [1, 2], ["a", "b"], "ref"
        )
        with pytest.raises(DecodingError):
            column.gather_with_reference(np.array([0]), {"ref": ["zzz"]})

    def test_empty_columns(self):
        column = HierarchicalEncoding().encode([], [], "ref")
        assert column.n_values == 0
        assert column.n_groups == 0

    def test_single_group(self, rng):
        zips = rng.integers(0, 100, size=500, dtype=np.int64)
        cities = ["OnlyCity"] * 500
        column = HierarchicalEncoding().encode(zips, cities, "city")
        assert column.n_groups == 1
        assert np.array_equal(
            column.decode_with_reference({"city": cities}), zips
        )

    def test_functional_dependency_needs_zero_code_bits(self):
        cities = ["a", "b", "c", "a", "b"] * 20
        zips = np.array([1, 2, 3, 1, 2] * 20, dtype=np.int64)
        column = HierarchicalEncoding().encode(zips, cities, "city")
        assert column.max_group_fanout == 1
        assert column.code_bit_width == 0

    def test_stats(self, city_zip_table):
        column = HierarchicalEncoding().encode(
            city_zip_table.column("zip_code"), city_zip_table.column("city"), "city"
        )
        stats = column.stats()
        assert stats.n_values == city_zip_table.n_rows
        assert stats.n_groups == 3
        assert stats.average_fanout == pytest.approx(5 / 3)

    def test_float_target_rejected(self):
        with pytest.raises(EncodingError):
            HierarchicalEncoding().encode(np.array([1.5, 2.5]), ["a", "b"], "ref")
