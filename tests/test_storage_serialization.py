"""Unit tests for block serialisation."""

import numpy as np
import pytest

from repro.core import CompressionPlan, TableCompressor
from repro.datasets import TaxiGenerator, taxi_multi_reference_config
from repro.dtypes import INT64, STRING
from repro.errors import SerializationError
from repro.storage import (
    BlockSerializer,
    Table,
    deserialize_block,
    serialize_block,
)


def _compress(table, plan=None, block_size=10_000):
    compressor = TableCompressor(plan, block_size=block_size)
    return compressor.compress_block(table)


class TestVerticalBlockRoundTrip:
    def test_int_and_string_columns(self):
        table = Table.from_columns(
            [
                ("x", INT64, np.arange(1_000, dtype=np.int64) + 7),
                ("s", STRING, [f"v{i % 13}" for i in range(1_000)]),
            ]
        )
        block = _compress(table)
        restored = deserialize_block(serialize_block(block))
        assert restored.n_rows == block.n_rows
        assert np.array_equal(restored.decode_column("x"), table.column("x"))
        assert restored.decode_column("s") == table.column("s")

    def test_sizes_preserved(self):
        table = Table.from_columns([("x", INT64, np.arange(500, dtype=np.int64))])
        block = _compress(table)
        restored = deserialize_block(serialize_block(block))
        assert restored.size_bytes == block.size_bytes
        assert restored.encoding_of("x") == block.encoding_of("x")


class TestHorizontalBlockRoundTrip:
    def test_diff_encoded_block(self, dates_schema_table):
        plan = (
            CompressionPlan.builder(dates_schema_table.schema)
            .diff_encode("commit", reference="ship")
            .diff_encode("receipt", reference="ship")
            .build()
        )
        block = _compress(dates_schema_table, plan)
        restored = deserialize_block(serialize_block(block))
        assert restored.is_horizontal("commit")
        assert np.array_equal(
            restored.decode_column("commit"), dates_schema_table.column("commit")
        )

    def test_hierarchical_block(self, city_zip_table):
        plan = (
            CompressionPlan.builder(city_zip_table.schema)
            .hierarchical_encode("zip_code", reference="city")
            .build()
        )
        block = _compress(city_zip_table, plan)
        restored = deserialize_block(serialize_block(block))
        assert np.array_equal(
            restored.decode_column("zip_code"), city_zip_table.column("zip_code")
        )
        assert restored.dependency("zip_code").references == ("city",)

    def test_multi_reference_block(self):
        taxi = TaxiGenerator().generate_monetary_only(5_000, seed=3)
        config = taxi_multi_reference_config()
        plan = (
            CompressionPlan.builder(taxi.schema)
            .multi_reference_encode("total_amount", config)
            .build()
        )
        block = _compress(taxi, plan)
        restored = deserialize_block(serialize_block(block))
        assert np.array_equal(
            restored.decode_column("total_amount"), taxi.column("total_amount")
        )


class TestStatisticsRoundTrip:
    def test_exact_statistics_round_trip(self):
        table = Table.from_columns(
            [
                ("x", INT64, np.arange(1_000, dtype=np.int64) + 7),
                ("s", STRING, [f"v{i % 13}" for i in range(1_000)]),
            ]
        )
        block = _compress(table)
        assert block.statistics is not None
        restored = deserialize_block(serialize_block(block))
        assert restored.statistics == block.statistics
        x_stats = restored.column_statistics("x")
        assert (x_stats.min_value, x_stats.max_value) == (7, 1_006)
        assert x_stats.distinct_count == 1_000
        assert x_stats.exact_bounds
        s_stats = restored.column_statistics("s")
        assert (s_stats.min_value, s_stats.max_value) == ("v0", "v9")

    def test_derived_diff_statistics_round_trip(self, dates_schema_table):
        plan = (
            CompressionPlan.builder(dates_schema_table.schema)
            .diff_encode("receipt", reference="ship")
            .build()
        )
        block = _compress(dates_schema_table, plan)
        restored = deserialize_block(serialize_block(block))
        stats = restored.column_statistics("receipt")
        assert not stats.exact_bounds
        assert (stats.delta_min, stats.delta_max) == (7, 7)
        ship = dates_schema_table.column("ship")
        assert stats.min_value == int(ship.min()) + 7
        assert stats.max_value == int(ship.max()) + 7

    def test_block_without_statistics_round_trips_none(self):
        table = Table.from_columns([("x", INT64, np.arange(50, dtype=np.int64))])
        block = TableCompressor(collect_statistics=False).compress_block(table)
        assert block.statistics is None
        restored = deserialize_block(serialize_block(block))
        assert restored.statistics is None


class TestSerializerErrors:
    def test_bad_magic(self):
        with pytest.raises(SerializationError):
            deserialize_block(b"NOTABLOCK")

    def test_truncated_payload(self):
        table = Table.from_columns([("x", INT64, np.arange(100, dtype=np.int64))])
        payload = serialize_block(_compress(table))
        with pytest.raises(SerializationError):
            deserialize_block(payload[: len(payload) // 2])

    def test_file_roundtrip(self, tmp_path):
        table = Table.from_columns([("x", INT64, np.arange(100, dtype=np.int64))])
        block = _compress(table)
        serializer = BlockSerializer()
        path = tmp_path / "block.corra"
        written = serializer.dump(block, path)
        assert path.stat().st_size == written
        restored = serializer.load(path)
        assert np.array_equal(restored.decode_column("x"), table.column("x"))
