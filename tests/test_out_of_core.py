"""Out-of-core storage tests: format round-trips, disk==memory parity, cache.

The property-based section drives randomized predicates and aggregates
through a :class:`DiskRelation` and asserts bit-identical results against
the in-memory :class:`Relation` the file was written from — over a relation
mixing vertical encodings (FOR/delta/dictionary/RLE candidates) with a
diff-encoded horizontal column, serial and parallel, with cache budgets
down to "smaller than one block".  The format section round-trips footers
across both supported format versions, and the metrics section proves that
planning is metadata-only: pruned blocks contribute zero bytes read.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import DATE, INT64, STRING
from repro.errors import SerializationError, ValidationError
from repro.query import Avg, Between, Count, Eq, In, Max, Min, Not, Or, Sum
from repro.storage import (
    BlockCache,
    Catalog,
    DiskRelation,
    Table,
    TableReader,
    TableWriter,
    open_table,
    write_table,
)
from repro.storage.format import FORMAT_VERSION, SUPPORTED_VERSIONS

TAGS = [f"tag_{i:02d}" for i in range(9)]
N_ROWS = 3_000
BLOCK_SIZE = 250


def _reference_table(seed: int = 23) -> Table:
    rng = np.random.default_rng(seed)
    ship = np.arange(N_ROWS, dtype=np.int64) + 8_000  # sorted (prunable)
    receipt = ship + rng.integers(1, 15, N_ROWS)  # diff-encodable
    v = rng.integers(0, 500, N_ROWS)  # unsorted ints
    runs = np.repeat(np.arange(N_ROWS // 100, dtype=np.int64), 100)  # RLE-ish
    tags = [TAGS[i] for i in rng.integers(0, len(TAGS), N_ROWS)]
    return Table.from_columns(
        [
            ("ship", DATE, ship),
            ("receipt", DATE, receipt),
            ("v", INT64, v),
            ("runs", INT64, runs),
            ("tag", STRING, tags),
        ]
    )


@pytest.fixture(scope="module")
def table() -> Table:
    return _reference_table()


@pytest.fixture(scope="module")
def relation(table):
    plan = (
        CompressionPlan.builder(table.schema)
        .diff_encode("receipt", reference="ship")
        .build()
    )
    return TableCompressor(plan, block_size=BLOCK_SIZE).compress(table)


@pytest.fixture(scope="module")
def table_path(relation, tmp_path_factory):
    path = tmp_path_factory.mktemp("corra") / "reference.corra"
    write_table(path, relation)
    return path


@pytest.fixture(scope="module")
def disk(table_path):
    with DiskRelation(table_path) as relation:
        yield relation


# -- random query strategies (mirrors test_query_plan) -------------------------

_int_leaves = st.one_of(
    st.builds(Eq, st.sampled_from(["v", "ship", "receipt", "runs"]), st.integers(-10, 9_100)),
    st.builds(
        lambda c, lo, hi: Between(c, min(lo, hi), max(lo, hi)),
        st.sampled_from(["v", "ship", "receipt"]),
        st.integers(-10, 9_100),
        st.integers(-10, 9_100),
    ),
    st.builds(In, st.just("v"), st.lists(st.integers(-10, 510), min_size=1, max_size=5)),
)
_string_leaves = st.one_of(
    st.builds(Eq, st.just("tag"), st.sampled_from(TAGS + ["absent"])),
    st.builds(
        In, st.just("tag"),
        st.lists(st.sampled_from(TAGS + ["absent"]), min_size=1, max_size=4),
    ),
)
_predicates = st.recursive(
    st.one_of(_int_leaves, _string_leaves),
    lambda children: st.one_of(
        st.builds(lambda a, b: a & b, children, children),
        st.builds(lambda a, b: Or(a, b), children, children),
        st.builds(Not, children),
    ),
    max_leaves=4,
)
_aggregate_sets = st.lists(
    st.sampled_from(
        [
            ("n", Count()),
            ("total", Sum("v")),
            ("rsum", Sum("receipt")),
            ("mean", Avg("v")),
            ("rmean", Avg("receipt")),
            ("lo", Min("ship")),
            ("hi", Max("receipt")),
        ]
    ),
    min_size=1,
    max_size=4,
    unique_by=lambda pair: pair[0],
)


class TestDiskMemoryParity:
    """Disk-served results are bit-identical to the in-memory relation."""

    @settings(max_examples=25, deadline=None)
    @given(predicate=_predicates)
    def test_filter_parity(self, relation, disk, predicate):
        expected = relation.query().where(predicate).execute()
        actual = disk.query().where(predicate).execute()
        assert np.array_equal(actual.row_ids, expected.row_ids)
        assert disk.query().where(predicate).count() == expected.n_rows

    @settings(max_examples=20, deadline=None)
    @given(predicate=_predicates, aggs=_aggregate_sets)
    def test_aggregate_parity(self, relation, disk, predicate, aggs):
        expected = relation.query().where(predicate).agg(**dict(aggs)).execute()
        serial = disk.query().where(predicate).agg(**dict(aggs)).execute()
        parallel = disk.query(workers=4).where(predicate).agg(**dict(aggs)).execute()
        for name, fn in aggs:
            assert serial.scalar(name) == expected.scalar(name), fn.describe()
            assert parallel.scalar(name) == expected.scalar(name), fn.describe()

    @settings(max_examples=10, deadline=None)
    @given(predicate=_predicates)
    def test_group_by_and_select_parity(self, relation, disk, predicate):
        expected = (
            relation.query().where(predicate).group_by("tag").agg(n=Count(), m=Avg("v")).execute()
        )
        actual = (
            disk.query().where(predicate).group_by("tag").agg(n=Count(), m=Avg("v")).execute()
        )
        assert actual.columns == expected.columns
        selected = disk.query().where(predicate).select("tag", "receipt").limit(20).execute()
        reference = relation.query().where(predicate).select("tag", "receipt").limit(20).execute()
        assert selected.column("tag") == reference.column("tag")
        assert np.array_equal(selected.column("receipt"), reference.column("receipt"))

    @settings(max_examples=10, deadline=None)
    @given(predicate=_predicates)
    def test_tiny_cache_budget_stays_correct(self, table_path, relation, predicate):
        """A budget smaller than any block degrades to load-per-access."""
        with DiskRelation(table_path, cache_bytes=1) as starved:
            expected = relation.query().where(predicate).execute()
            actual = starved.query().where(predicate).execute()
            assert np.array_equal(actual.row_ids, expected.row_ids)
            assert len(starved.cache) == 0

    def test_full_scan_materialisation_matches(self, table, disk):
        result = disk.query().select(*table.column_names).execute()
        for name in table.column_names:
            values = table.column(name)
            if isinstance(values, np.ndarray):
                assert np.array_equal(result.column(name), values)
            else:
                assert result.column(name) == values


class TestMetadataOnlyPlanning:
    def test_pruned_blocks_contribute_zero_bytes(self, table_path):
        with DiskRelation(table_path) as fresh:
            # Block-aligned sorted range: 3 fully-covered blocks, rest pruned.
            query = fresh.query().where(Between("ship", 8_250, 8_999))
            assert query.count() == 750
            assert fresh.io.blocks_read == 0
            assert fresh.io.bytes_read == 0
            metrics = query.last_metrics
            assert metrics.blocks_pruned + metrics.blocks_full == fresh.n_blocks

    def test_only_surviving_blocks_are_fetched(self, table_path):
        with DiskRelation(table_path) as fresh:
            # A non-aligned range counts over exactly the two boundary
            # blocks, and only their predicate column's sub-segments move:
            # the v3 footer makes the scan column-granular.
            fresh.query().where(Between("ship", 8_100, 8_260)).count()
            scanned = [
                i for i in range(fresh.n_blocks) if fresh.is_column_cached(i, "ship")
            ]
            assert scanned == [0, 1]
            expected_bytes = sum(
                fresh.footer.blocks[i].column_segment("ship").length for i in scanned
            )
            assert fresh.io.blocks_read == 0
            assert fresh.io.columns_read == 2
            assert fresh.io.bytes_read == expected_bytes
            assert fresh.io.column_bytes_read == expected_bytes
            # The block-granular baseline those reads avoided.
            assert fresh.io.column_block_bytes == sum(
                fresh.footer.blocks[i].length for i in scanned
            )
            assert fresh.io.column_bytes_read < fresh.io.column_block_bytes

    def test_aggregates_over_covered_blocks_read_nothing(self, table_path):
        with DiskRelation(table_path) as fresh:
            result = (
                fresh.query()
                .where(Between("ship", 8_250, 8_999))
                .agg(total=Sum("v"), rsum=Sum("receipt"), mean=Avg("receipt"))
                .execute()
            )
            assert fresh.io.blocks_read == 0
            assert result.metrics.rows_gathered == 0

    def test_explain_reads_no_blocks(self, table_path):
        with DiskRelation(table_path) as fresh:
            text = fresh.query().where(Eq("ship", 8_123)).explain()
            assert "prune" in text
            assert fresh.io.blocks_read == 0

    def test_size_bytes_comes_from_footer(self, table_path, disk):
        with DiskRelation(table_path) as fresh:
            assert fresh.size_bytes == fresh.footer.data_bytes
            assert fresh.io.blocks_read == 0


class TestFormatRoundTrip:
    @pytest.mark.parametrize("version", SUPPORTED_VERSIONS)
    def test_footer_round_trip_across_versions(self, relation, tmp_path, version):
        path = tmp_path / f"v{version}.corra"
        footer = write_table(path, relation, version=version)
        assert footer.version == version
        with TableReader(path) as reader:
            assert reader.version == version
            assert reader.schema == relation.schema
            assert reader.block_size == relation.block_size
            assert reader.n_rows == relation.n_rows
            assert reader.n_blocks == relation.n_blocks
            for index, block in enumerate(relation):
                entry = reader.block_entry(index)
                assert entry.n_rows == block.n_rows
                assert entry.statistics == block.statistics
                assert (entry.checksum is not None) == (version >= 2)
                restored = reader.read_block(index)
                assert restored.n_rows == block.n_rows
                assert restored.column_names == block.column_names

    @pytest.mark.parametrize("version", SUPPORTED_VERSIONS)
    def test_disk_relation_serves_both_versions(self, relation, tmp_path, version):
        path = tmp_path / f"rel-v{version}.corra"
        write_table(path, relation, version=version)
        with DiskRelation(path) as fresh:
            assert fresh.format_version == version
            assert fresh.query().where(Between("ship", 8_100, 8_260)).count() == (
                relation.query().where(Between("ship", 8_100, 8_260)).count()
            )

    def test_checksum_detects_corruption(self, relation, tmp_path):
        path = tmp_path / "corrupt.corra"
        footer = write_table(path, relation)
        entry = footer.blocks[0]
        data = bytearray(path.read_bytes())
        # Flip one byte in the middle of block 0's segment.
        data[entry.offset + entry.length // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with TableReader(path) as reader:
            with pytest.raises(SerializationError, match="checksum"):
                reader.read_block(0)

    def test_truncated_and_foreign_files_are_rejected(self, tmp_path):
        empty = tmp_path / "empty.corra"
        empty.write_bytes(b"")
        with pytest.raises(SerializationError):
            TableReader(empty)
        foreign = tmp_path / "foreign.corra"
        foreign.write_bytes(b"not a corra table, definitely long enough to read")
        with pytest.raises(SerializationError):
            TableReader(foreign)

    def test_writer_rejects_bad_versions_and_oversized_blocks(self, relation, tmp_path):
        with pytest.raises(ValidationError):
            TableWriter(tmp_path / "x.corra", relation.schema, BLOCK_SIZE, version=99)
        writer = TableWriter(tmp_path / "y.corra", relation.schema, block_size=10)
        with pytest.raises(ValidationError):
            writer.write_block(relation.block(0))  # 250 rows > block size 10

    def test_write_table_defaults_to_current_version(self, relation, tmp_path):
        path = tmp_path / "default.corra"
        footer = write_table(path, relation)
        assert footer.version == FORMAT_VERSION

    def test_empty_relation_round_trips(self, tmp_path):
        table = _reference_table().slice(0, 0)
        relation = TableCompressor(block_size=BLOCK_SIZE).compress(table)
        path = tmp_path / "empty-rel.corra"
        write_table(path, relation)
        with DiskRelation(path) as fresh:
            assert fresh.n_rows == 0
            assert fresh.query().where(Eq("v", 1)).count() == 0

    def test_seek_read_fallback_matches_mmap(self, table_path, relation):
        with DiskRelation(table_path, use_mmap=False) as fresh:
            predicate = Between("ship", 8_100, 8_260)
            assert fresh.query().where(predicate).count() == (
                relation.query().where(predicate).count()
            )


class TestCacheBehaviourOnDisk:
    def test_eviction_under_small_budget_keeps_results_exact(self, table_path, relation):
        # A budget of roughly three of the ~300-byte column sub-segments:
        # a scan touching every block must evict as it goes.
        budget = 3 * 300
        with DiskRelation(table_path, cache_bytes=budget, prefetch_workers=0) as small:
            predicate = Between("v", 0, 250)  # unsorted: every block scans
            expected = relation.query().where(predicate).count()
            assert small.query().where(predicate).count() == expected
            stats = small.cache_stats
            assert stats.evictions > 0
            assert stats.current_bytes <= budget
            # Re-running faults evicted segments back in, still correctly.
            assert small.query().where(predicate).count() == expected

    def test_starved_cache_loads_each_block_once_per_scan(self, table_path):
        # Budget below every segment: nothing is retained, but a worker body
        # resolves its proxy once, so a full scan reads each block's
        # predicate column exactly once — not once per proxy access.
        with DiskRelation(table_path, cache_bytes=1, prefetch_workers=0) as starved:
            starved.query().where(Between("v", 0, 250)).count()
            assert starved.io.columns_read == starved.n_blocks
            assert starved.io.blocks_read == 0
            assert starved.io.bytes_read == sum(
                entry.column_segment("v").length for entry in starved.footer.blocks
            )

    def test_warm_cache_serves_hits_without_io(self, table_path):
        with DiskRelation(table_path) as fresh:
            predicate = Between("ship", 8_100, 8_260)
            fresh.query().where(predicate).execute()
            cold_reads = fresh.io.blocks_read
            fresh.query().where(predicate).execute()
            assert fresh.io.blocks_read == cold_reads  # all hits, no new I/O
            assert fresh.cache_stats.hits > 0

    def test_shared_cache_across_tables(self, relation, tmp_path):
        cache = BlockCache(budget_bytes=None)
        path_a = tmp_path / "a.corra"
        path_b = tmp_path / "b.corra"
        write_table(path_a, relation)
        write_table(path_b, relation)
        with DiskRelation(path_a, cache=cache) as a, DiskRelation(path_b, cache=cache) as b:
            a.query().where(Between("ship", 8_100, 8_260)).count()
            b.query().where(Between("ship", 8_100, 8_260)).count()
            # Same (block, column) coordinates, distinct tables: the
            # relation token in the key must keep them from colliding.
            assert a.io.columns_read == 2
            assert b.io.columns_read == 2
            assert len(cache) == 4


class TestCatalog:
    def test_save_open_list_remove(self, relation, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        catalog.save("lineitem", relation)
        assert catalog.tables() == ("lineitem",)
        assert "lineitem" in catalog
        with catalog.open("lineitem") as table:
            assert table.n_rows == relation.n_rows
        catalog.remove("lineitem")
        assert catalog.tables() == ()
        assert "lineitem" not in catalog

    def test_duplicate_save_requires_overwrite(self, relation, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        catalog.save("t", relation)
        with pytest.raises(ValidationError):
            catalog.save("t", relation)
        catalog.save("t", relation, overwrite=True)

    def test_open_unknown_table(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        # Read paths never create the directory; a missing root says so.
        with pytest.raises(ValidationError, match="does not exist"):
            catalog.open("missing")
        assert not (tmp_path / "cat").exists()
        (tmp_path / "cat").mkdir()
        with pytest.raises(ValidationError, match="no table named"):
            catalog.open("missing")
        with pytest.raises(ValidationError):
            catalog.remove("missing")

    def test_invalid_names_rejected(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        for name in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(ValidationError):
                catalog.path_of(name)
            assert name not in catalog

    def test_open_table_helper(self, table_path):
        with open_table(table_path) as fresh:
            assert fresh.n_rows == N_ROWS
