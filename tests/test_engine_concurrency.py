"""Concurrent queries through one shared Engine are bit-identical to serial.

The engine's whole premise is that cross-query state — the planner memo,
the worker pool, the block cache, the compiled-plan LRU — can be shared by
many request threads without changing any result.  These tests hammer one
engine from K threads with a randomized mix of plans and compare every
result against the same plan executed serially on a private compiler.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import LockWitness
from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64, STRING
from repro.query import Avg, Between, Count, Engine, EngineConfig, Eq, In, Max, Min, Sum
from repro.storage import Catalog, Table

N_ROWS = 2_000
BLOCK_SIZE = 200
TAGS = [f"tag_{i}" for i in range(6)]


def _build_relation(seed: int = 11):
    rng = np.random.default_rng(seed)
    table = Table.from_columns(
        [
            ("ship", INT64, np.arange(N_ROWS, dtype=np.int64) + 8_000),
            ("v", INT64, rng.integers(0, 400, N_ROWS)),
            ("tag", STRING, [TAGS[i] for i in rng.integers(0, len(TAGS), N_ROWS)]),
        ]
    )
    plan = CompressionPlan.vertical_only(table.schema)
    return TableCompressor(plan, block_size=BLOCK_SIZE).compress(table)


RELATION = _build_relation()

#: A pool of distinct plans, as (name, build) pairs over a LazyQuery root.
PLANS = [
    ("count_range", lambda q: q.where(Between("ship", 8_100, 8_900))),
    ("count_eq", lambda q: q.where(Eq("tag", "tag_2"))),
    ("agg", lambda q: q.where(Between("v", 10, 200)).agg(n=Count(), s=Sum("v"), m=Min("ship"))),
    ("group", lambda q: q.group_by("tag").agg(n=Count(), hi=Max("v"), mean=Avg("v"))),
    ("select", lambda q: q.where(In("tag", ["tag_0", "tag_5"])).select("ship", "tag").limit(40)),
    ("wide", lambda q: q.where(Between("ship", 8_000, 9_999)).agg(total=Sum("v"))),
]


def _run_plan(root, name_and_build):
    name, build = name_and_build
    lazy = build(root)
    if name.startswith("count"):
        return name, lazy.count()
    result = lazy.execute()
    return name, {k: list(v) for k, v in result.columns.items()}


@pytest.fixture(scope="module")
def serial_reference():
    """Every plan's result on a private, serial compiler."""
    reference = {}
    for entry in PLANS:
        name, value = _run_plan(RELATION.query(), entry)
        reference[name] = value
    return reference


class TestConcurrentEngine:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_k_threads_bit_identical_to_serial(self, serial_reference, workers):
        with Engine(EngineConfig(workers=workers)) as engine:
            # The witness records the runtime lock acquisition graph while
            # the threads hammer the engine; any order inversion between
            # the engine lock and the cache lock fails the test even if
            # this particular schedule happened not to deadlock.
            witness = LockWitness()
            witness.wrap_attr(engine, "_lock", "Engine._lock")
            witness.wrap_attr(engine.cache, "_lock", "BlockCache._lock")
            errors: list = []
            results: list = []

            def worker(thread_id: int):
                try:
                    rng = np.random.default_rng(thread_id)
                    for _ in range(12):
                        entry = PLANS[rng.integers(0, len(PLANS))]
                        results.append(_run_plan(engine.query(RELATION), entry))
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors
            assert len(results) == 8 * 12
            for name, value in results:
                assert value == serial_reference[name], f"plan {name!r} diverged"
            # All 96 runs shared one compiler (one planner memo).
            assert len(engine._compilers) == 1
            witness.assert_clean()

    def test_concurrent_first_touch_creates_one_compiler(self):
        """The memoization race on first use resolves to a single compiler."""
        with Engine() as engine:
            barrier = threading.Barrier(6, timeout=10)
            compilers = []

            def worker():
                barrier.wait()
                compilers.append(engine.compiler_for(RELATION))

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(compilers) == 6
            assert all(c is compilers[0] for c in compilers)

    def test_concurrent_catalog_tables_share_cache(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        catalog.save("t", RELATION)
        with Engine(EngineConfig(workers=2), catalog=catalog) as engine:
            witness = LockWitness()
            witness.wrap_attr(engine, "_lock", "Engine._lock")
            witness.wrap_attr(engine.cache, "_lock", "BlockCache._lock")
            errors: list = []
            counts: list = []

            def worker():
                try:
                    table = engine.table("t")
                    counts.append(
                        engine.query(table).where(Between("ship", 8_100, 8_900)).count()
                    )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors
            expected = RELATION.query().where(Between("ship", 8_100, 8_900)).count()
            assert counts == [expected] * 8
            # One memoized table object; every thread's reads shared it.
            assert len(engine.tables()) == 1
            witness.assert_clean()


class TestPropertyBasedConcurrency:
    @settings(max_examples=15, deadline=None)
    @given(
        lo=st.integers(min_value=8_000, max_value=9_998),
        width=st.integers(min_value=1, max_value=1_000),
        tag=st.sampled_from(TAGS),
        workers=st.sampled_from([1, 3]),
    )
    def test_randomized_plans_match_serial(self, lo, width, tag, workers):
        predicate = Between("ship", lo, lo + width) & Eq("tag", tag)
        serial = RELATION.query().where(predicate).agg(n=Count(), s=Sum("v")).execute()
        with Engine(EngineConfig(workers=workers)) as engine:
            outcomes: list = []

            def worker():
                result = (
                    engine.query(RELATION).where(predicate).agg(n=Count(), s=Sum("v")).execute()
                )
                outcomes.append({k: list(v) for k, v in result.columns.items()})

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            expected = {k: list(v) for k, v in serial.columns.items()}
            assert outcomes == [expected] * 4
