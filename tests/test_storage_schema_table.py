"""Unit tests for schemas and in-memory tables."""

import numpy as np
import pytest

from repro.dtypes import DATE, INT64, STRING
from repro.errors import SchemaError, UnknownColumnError, ValidationError
from repro.storage import ColumnSpec, Schema, Table


class TestSchema:
    def test_names_and_lookup(self):
        schema = Schema.from_pairs([("a", INT64), ("b", STRING)])
        assert schema.names == ("a", "b")
        assert schema.dtype("b") is STRING
        assert schema.index_of("b") == 1
        assert "a" in schema and "z" not in schema

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.from_pairs([("a", INT64), ("a", STRING)])

    def test_empty_column_name_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec("", INT64)

    def test_unknown_column(self):
        schema = Schema.from_pairs([("a", INT64)])
        with pytest.raises(UnknownColumnError):
            schema.column("b")

    def test_select_preserves_order(self):
        schema = Schema.from_pairs([("a", INT64), ("b", STRING), ("c", DATE)])
        assert schema.select(["c", "a"]).names == ("c", "a")

    def test_with_column(self):
        schema = Schema.from_pairs([("a", INT64)])
        extended = schema.with_column(ColumnSpec("b", DATE))
        assert extended.names == ("a", "b")
        assert schema.names == ("a",)  # original untouched

    def test_dict_roundtrip(self):
        schema = Schema.from_pairs([("a", INT64), ("b", STRING)])
        assert Schema.from_dict(schema.to_dict()) == schema


class TestTable:
    def test_from_columns(self):
        table = Table.from_columns(
            [("x", INT64, np.arange(5)), ("s", STRING, list("abcde"))]
        )
        assert table.n_rows == 5
        assert list(table.column("s")) == list("abcde")

    def test_length_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_columns(
                [("x", INT64, np.arange(5)), ("y", INT64, np.arange(4))]
            )

    def test_missing_column_data_rejected(self):
        schema = Schema.from_pairs([("x", INT64), ("y", INT64)])
        with pytest.raises(SchemaError):
            Table(schema, {"x": np.arange(3)})

    def test_extra_column_data_rejected(self):
        schema = Schema.from_pairs([("x", INT64)])
        with pytest.raises(SchemaError):
            Table(schema, {"x": np.arange(3), "y": np.arange(3)})

    def test_float_data_rejected(self):
        with pytest.raises(ValidationError):
            Table.from_columns([("x", INT64, np.array([1.5, 2.5]))])

    def test_unknown_column_access(self):
        table = Table.from_columns([("x", INT64, np.arange(3))])
        with pytest.raises(UnknownColumnError):
            table.column("y")

    def test_slice(self):
        table = Table.from_columns(
            [("x", INT64, np.arange(10)), ("s", STRING, list("abcdefghij"))]
        )
        part = table.slice(2, 5)
        assert part.n_rows == 3
        assert np.array_equal(part.column("x"), [2, 3, 4])
        assert part.column("s") == ["c", "d", "e"]

    def test_slice_bounds_checked(self):
        table = Table.from_columns([("x", INT64, np.arange(10))])
        with pytest.raises(ValidationError):
            table.slice(5, 3)
        with pytest.raises(ValidationError):
            table.slice(0, 11)

    def test_select(self):
        table = Table.from_columns(
            [("x", INT64, np.arange(3)), ("y", INT64, np.arange(3))]
        )
        assert table.select(["y"]).column_names == ("y",)

    def test_with_column(self):
        table = Table.from_columns([("x", INT64, np.arange(3))])
        extended = table.with_column("y", INT64, np.arange(3) * 2)
        assert extended.column_names == ("x", "y")
        assert table.column_names == ("x",)

    def test_uncompressed_size(self):
        table = Table.from_columns(
            [("d", DATE, np.arange(10)), ("s", STRING, ["ab"] * 10)]
        )
        assert table.uncompressed_size("d") == 40
        assert table.uncompressed_size("s") == 10 * 8 + 20
        assert table.uncompressed_size() == 40 + 100

    def test_equals(self):
        a = Table.from_columns([("x", INT64, np.arange(4))])
        b = Table.from_columns([("x", INT64, np.arange(4))])
        c = Table.from_columns([("x", INT64, np.arange(1, 5))])
        assert a.equals(b)
        assert not a.equals(c)

    def test_head(self):
        table = Table.from_columns([("x", INT64, np.arange(100))])
        assert table.head(3).n_rows == 3

    def test_repr_mentions_columns(self):
        table = Table.from_columns([("x", INT64, np.arange(2))])
        assert "x:int64" in repr(table)
