"""Tests for ORDER BY / top-k, work stealing, HAVING and the var/std aggregates.

The contracts under test:

* ``order_by`` (and the fused ``order_by().limit(k)`` top-k) returns rows
  in total order — sort key, then ascending row id on ties — bit-identical
  across serial execution, work-stealing parallel execution and out-of-core
  tables.
* The work-stealing scheduler rebalances skewed workloads (at least one
  steal is observed) without changing any result.
* The zone-map-driven top-k visits only the blocks whose bounds can still
  beat the k-th candidate; on a clustered disk table skipped blocks are
  never fetched.
* ``having`` filters aggregated rows by output name; ``Var``/``Std`` are
  exact population moments.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64, STRING
from repro.errors import ValidationError
from repro.query import (
    Aggregate,
    Between,
    ColumnPredicate,
    Count,
    EngineConfig,
    Eq,
    Limit,
    Min,
    Project,
    QueryCompiler,
    RleKernel,
    Scan,
    Sort,
    Std,
    Sum,
    TopK,
    Var,
)
from repro.server.protocol import build_query, parse_request
from repro.storage import DiskRelation, Table, write_table

TAGS = [f"tag_{i:02d}" for i in range(12)]
WORKER_COUNTS = (1, 2, 4)


def _make_table(n_rows: int = 3000, seed: int = 11) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_columns([
        ("v", INT64, rng.integers(0, 500, n_rows)),
        ("tag", STRING, [TAGS[i] for i in rng.integers(0, len(TAGS), n_rows)]),
    ])


def _make_relation(n_rows: int = 3000, block_size: int = 256, seed: int = 11):
    return TableCompressor(block_size=block_size).compress(_make_table(n_rows, seed))


@pytest.fixture(scope="module")
def table():
    return _make_table()


@pytest.fixture(scope="module")
def relation(table):
    return TableCompressor(block_size=256).compress(table)


@pytest.fixture(scope="module")
def disk_relation(table, tmp_path_factory):
    path = tmp_path_factory.mktemp("topk") / "t.corra"
    write_table(str(path), TableCompressor(block_size=256).compress(table))
    return DiskRelation(str(path), prefetch_workers=0)


def _reference_order(values: np.ndarray, row_ids: np.ndarray, descending: bool) -> np.ndarray:
    """Row ids in total order: key (asc or desc), row id ascending on ties."""
    keys = values[row_ids]
    if keys.dtype.kind in ("U", "S", "O"):
        pairs = sorted(
            range(len(row_ids)),
            key=lambda i: (keys[i], -int(row_ids[i])),
            reverse=descending,
        )
        if descending:
            return row_ids[pairs]
        return row_ids[sorted(range(len(row_ids)), key=lambda i: (keys[i], int(row_ids[i])))]
    order = np.lexsort((row_ids, -keys if descending else keys))
    return row_ids[order]


# -- parity: order_by / top-k across workers and storage ----------------------


class TestOrderedParity:
    """Ordered output is bit-identical to the numpy reference everywhere."""

    @settings(max_examples=25, deadline=None)
    @given(
        lo=st.integers(-10, 510),
        hi=st.integers(-10, 510),
        descending=st.booleans(),
        k=st.one_of(st.none(), st.integers(0, 40)),
        order_column=st.sampled_from(["v", "tag"]),
    )
    def test_matches_reference_across_workers(
        self, table, relation, lo, hi, descending, k, order_column
    ):
        lo, hi = min(lo, hi), max(lo, hi)
        values = np.asarray(table.column("v"), dtype=np.int64)
        keys = np.asarray(table.column(order_column))
        matched = np.flatnonzero((values >= lo) & (values <= hi)).astype(np.int64)
        expected_ids = _reference_order(keys, matched, descending)
        if k is not None:
            expected_ids = expected_ids[:k]
        expected = keys[expected_ids].tolist()

        for workers in WORKER_COUNTS:
            query = (
                relation.query(config=EngineConfig(workers=workers))
                .where(Between("v", lo, hi))
                .select(order_column)
                .order_by(order_column, desc=descending)
            )
            if k is not None:
                query = query.limit(k)
            got = list(query.execute().columns[order_column])
            assert got == expected, (workers, lo, hi, descending, k)

    @settings(max_examples=10, deadline=None)
    @given(descending=st.booleans(), k=st.integers(1, 25))
    def test_disk_topk_matches_in_memory(self, table, relation, disk_relation, descending, k):
        in_memory = (
            relation.query().select("v", "tag").order_by("v", desc=descending).limit(k).execute()
        )
        on_disk = (
            disk_relation.query()
            .select("v", "tag")
            .order_by("v", desc=descending)
            .limit(k)
            .execute()
        )
        assert list(on_disk.columns["v"]) == list(in_memory.columns["v"])
        assert list(on_disk.columns["tag"]) == list(in_memory.columns["tag"])

    def test_statistics_off_is_identical(self, relation):
        with_stats = relation.query().select("v").order_by("v").limit(9).execute()
        without = (
            relation.query(config=EngineConfig(use_statistics=False))
            .select("v")
            .order_by("v")
            .limit(9)
            .execute()
        )
        assert list(with_stats.columns["v"]) == list(without.columns["v"])

    def test_limit_zero_returns_no_rows_and_prunes_everything(self, relation):
        result = relation.query().select("v").order_by("v").limit(0).execute()
        assert result.n_rows == 0
        assert result.metrics.blocks_pruned == result.metrics.n_blocks


# -- work stealing ------------------------------------------------------------


class TestWorkStealing:
    """A skewed deal forces steals; results never change."""

    def _skewed_relation(self, block_size=128, n_blocks=16):
        # First half of the blocks carries marker 0 (cheap), second half
        # marker 1 (slow): with contiguous dealing over two workers, worker 0
        # drains its cheap half long before worker 1 finishes one slow block.
        half = (n_blocks // 2) * block_size
        marker = np.concatenate([
            np.zeros(half, dtype=np.int64),
            np.ones(half, dtype=np.int64),
        ])
        table = Table.from_columns([("m", INT64, marker)])
        return TableCompressor(block_size=block_size).compress(table)

    def _slow_predicate(self):
        def condition(values):
            if values.max(initial=0) > 0:
                time.sleep(0.02)
            return values >= 0

        return ColumnPredicate("m", condition, description="m >= 0 (slowed)")

    def test_skewed_workload_steals_and_stays_bit_identical(self):
        skewed = self._skewed_relation()
        serial = skewed.query().where(self._slow_predicate()).select("m").execute()
        parallel = (
            skewed.query(config=EngineConfig(workers=2))
            .where(self._slow_predicate())
            .select("m")
            .execute()
        )
        assert list(parallel.columns["m"]) == list(serial.columns["m"])
        assert parallel.metrics.morsels_stolen >= 1
        assert parallel.metrics.steal_attempts >= parallel.metrics.morsels_stolen

    def test_stealing_off_reports_no_steals(self):
        from repro.query.parallel import ParallelEngine
        from repro.query.scan import ScanPlanner

        skewed = self._skewed_relation()
        engine = ParallelEngine(
            skewed, planner=ScanPlanner(skewed), workers=2, stealing=False
        )
        try:
            row_ids, metrics = engine.scan(self._slow_predicate())
        finally:
            engine.close()
        assert metrics.morsels_stolen == 0
        assert metrics.steal_attempts == 0
        assert len(row_ids) == skewed.n_rows

    def test_serial_execution_never_steals(self, relation):
        result = relation.query().where(Between("v", 0, 499)).select("v").execute()
        assert result.metrics.morsels_stolen == 0
        assert result.metrics.steal_attempts == 0


# -- zone-map early exit ------------------------------------------------------


class TestEarlyExit:
    """Top-k over a clustered column visits a fraction of the blocks."""

    def _clustered(self, tmp_path, n_rows=20_000, block_size=512):
        rng = np.random.default_rng(3)
        table = Table.from_columns([
            ("ts", INT64, np.sort(rng.integers(0, 1_000_000, n_rows))),
            ("payload", INT64, rng.integers(0, 1000, n_rows)),
        ])
        relation = TableCompressor(block_size=block_size).compress(table)
        path = tmp_path / "clustered.corra"
        write_table(str(path), relation)
        return table, relation, DiskRelation(str(path), prefetch_workers=0)

    def test_skipped_blocks_are_never_fetched(self, tmp_path):
        table, relation, disk = self._clustered(tmp_path)
        expected = np.asarray(table.column("ts"), dtype=np.int64)
        for descending in (False, True):
            result = (
                disk.query(config=EngineConfig(workers=1))
                .select("ts")
                .order_by("ts", desc=descending)
                .limit(20)
                .execute()
            )
            ref = np.sort(expected)[::-1][:20] if descending else np.sort(expected)[:20]
            assert list(result.columns["ts"]) == ref.tolist()
            metrics = result.metrics
            visited = metrics.blocks_scanned + metrics.blocks_full
            assert visited <= 0.25 * metrics.n_blocks
            assert metrics.blocks_pruned == metrics.n_blocks - visited

    def test_early_exit_counts_blocks_as_pruned_in_memory(self, tmp_path):
        _, relation, _ = self._clustered(tmp_path)
        result = (
            relation.query(config=EngineConfig(workers=1))
            .select("ts")
            .order_by("ts")
            .limit(10)
            .execute()
        )
        metrics = result.metrics
        assert metrics.blocks_pruned > 0.7 * metrics.n_blocks


# -- plan shapes and builder validation ---------------------------------------


class TestPlanShapes:
    def test_sort_below_project_is_rejected(self, relation):
        compiler = QueryCompiler(relation)
        plan = Project(Sort(Scan(relation), "v"), ("v",))
        with pytest.raises(ValidationError):
            compiler.compile(plan)

    def test_two_sort_nodes_are_rejected(self, relation):
        compiler = QueryCompiler(relation)
        plan = Sort(Sort(Scan(relation), "v"), "tag")
        with pytest.raises(ValidationError):
            compiler.compile(plan)

    def test_sort_over_aggregate_is_rejected(self, relation):
        compiler = QueryCompiler(relation)
        plan = Sort(Aggregate(Scan(relation), (("n", Count()),)), "n")
        with pytest.raises(ValidationError):
            compiler.compile(plan)

    def test_topk_keeps_tighter_enclosing_limit(self, relation):
        compiler = QueryCompiler(relation)
        compiled = compiler.compile(Limit(TopK(Scan(relation), column="v", k=7), 3))
        assert compiled.limit == 3
        compiled = compiler.compile(Limit(TopK(Scan(relation), column="v", k=2), 9))
        assert compiled.limit == 2

    def test_negative_k_is_rejected(self, relation):
        compiler = QueryCompiler(relation)
        with pytest.raises(ValidationError):
            compiler.compile(TopK(Scan(relation), column="v", k=-1))

    def test_order_by_rejects_aggregate_chains(self, relation):
        with pytest.raises(ValidationError):
            relation.query().agg(n=Count()).order_by("n")
        with pytest.raises(ValidationError):
            relation.query().order_by("v").agg(n=Count())
        with pytest.raises(ValidationError):
            relation.query().order_by("v").group_by("tag")

    def test_order_by_rejects_empty_column(self, relation):
        with pytest.raises(ValidationError):
            relation.query().order_by("")

    def test_having_requires_aggregation(self, relation):
        query = relation.query().having(Eq("n", 1)).select("v")
        with pytest.raises(ValidationError):
            query.execute()

    def test_having_must_reference_output_columns(self, relation):
        query = relation.query().group_by("tag").agg(n=Count()).having(Eq("v", 1))
        with pytest.raises(ValidationError):
            query.execute()

    def test_count_terminal_rejects_having(self, relation):
        query = relation.query().agg(n=Count()).having(Eq("n", 1))
        with pytest.raises(ValidationError):
            query.count()

    def test_explain_renders_sort_and_topk(self, relation):
        assert "Sort [v desc]" in relation.query().select("v").order_by("v", desc=True).explain()
        text = relation.query().select("v").order_by("v").limit(3).explain()
        assert "TopK [v asc, k=3]" in text


# -- fingerprints -------------------------------------------------------------


class TestFingerprints:
    def _fingerprint(self, relation, query):
        return QueryCompiler(relation).compile(query.logical_plan()).fingerprint()

    def test_order_direction_and_k_are_canonical(self, relation):
        asc = self._fingerprint(relation, relation.query().select("v").order_by("v"))
        desc = self._fingerprint(
            relation, relation.query().select("v").order_by("v", desc=True)
        )
        assert asc is not None and desc is not None
        assert asc != desc
        k3 = self._fingerprint(relation, relation.query().select("v").order_by("v").limit(3))
        k4 = self._fingerprint(relation, relation.query().select("v").order_by("v").limit(4))
        assert k3 != k4

    def test_having_participates_in_fingerprint(self, relation):
        base = relation.query().group_by("tag").agg(n=Count())
        plain = self._fingerprint(relation, base)
        having = self._fingerprint(relation, base.having(Between("n", 10, 1000)))
        assert plain is not None and having is not None
        assert plain != having

    def test_opaque_having_poisons_fingerprint(self, relation):
        opaque = ColumnPredicate("n", lambda values: values > 0)
        query = relation.query().group_by("tag").agg(n=Count()).having(opaque)
        assert self._fingerprint(relation, query) is None

    def test_protocol_order_by_shapes_share_a_fingerprint(self, relation):
        terse = parse_request({"table": "t", "order_by": "v", "select": ["v"], "k": 5})
        verbose = parse_request({
            "table": "t",
            "order_by": {"column": "v", "desc": False},
            "select": ["v"],
            "limit": 5,
        })
        a = self._fingerprint(relation, build_query(relation.query(), terse))
        b = self._fingerprint(relation, build_query(relation.query(), verbose))
        assert a is not None
        assert a == b


# -- kernel declines ----------------------------------------------------------


class TestKernelDeclines:
    def _rle_relation(self):
        values = np.repeat(np.arange(20, dtype=np.int64), 100)
        table = Table.from_columns([("x", INT64, values)])
        builder = CompressionPlan.builder(table.schema)
        builder.vertical("x", "rle")
        return TableCompressor(builder.build(), block_size=256).compress(table)

    def test_opaque_predicate_over_rle_counts_declines(self):
        relation = self._rle_relation()
        opaque = ColumnPredicate("x", lambda values: values % 2 == 0, "x is even")
        result = relation.query().where(opaque).select("x").execute()
        assert list(result.columns["x"]) == [v for v in range(0, 20, 2) for _ in range(100)]
        assert result.metrics.kernel_declines > 0

    def test_run_space_predicate_does_not_decline(self):
        relation = self._rle_relation()
        result = relation.query().where(Between("x", 3, 7)).select("x").execute()
        assert result.metrics.kernel_declines == 0
        assert result.metrics.rows_rle_evaluated > 0

    def test_declines_surface_in_explain_analyze(self):
        relation = self._rle_relation()
        opaque = ColumnPredicate("x", lambda values: values % 2 == 0, "x is even")
        text = relation.query().where(opaque).select("x").limit(1).explain(analyze=True)
        assert "kernel declines" in text


# -- RLE run-space top-k ------------------------------------------------------


class TestRleTopk:
    def _column(self, values):
        table = Table.from_columns([("x", INT64, np.asarray(values, dtype=np.int64))])
        builder = CompressionPlan.builder(table.schema)
        builder.vertical("x", "rle")
        relation = TableCompressor(builder.build(), block_size=len(values)).compress(table)
        block = relation.blocks[0]
        return block.column("x")

    def test_best_first_with_ascending_position_ties(self):
        values = [5, 5, 1, 1, 9, 9, 5, 5]
        column = self._column(values)
        mask = np.ones(len(values), dtype=bool)
        kernel = RleKernel()
        out_values, positions = kernel.topk(column, mask, k=4, descending=True)
        assert out_values.tolist() == [9, 9, 5, 5]
        assert positions.tolist() == [4, 5, 0, 1]
        out_values, positions = kernel.topk(column, mask, k=3, descending=False)
        assert out_values.tolist() == [1, 1, 5]
        assert positions.tolist() == [2, 3, 0]

    def test_mask_restricts_candidates(self):
        values = [5, 5, 1, 1, 9, 9]
        column = self._column(values)
        mask = np.array([False, True, True, False, False, True])
        out_values, positions = RleKernel().topk(column, mask, k=10, descending=True)
        assert out_values.tolist() == [9, 5, 1]
        assert positions.tolist() == [5, 1, 2]

    def test_empty_mask_returns_empty(self):
        values = [5, 5, 1]
        column = self._column(values)
        mask = np.zeros(len(values), dtype=bool)
        out_values, positions = RleKernel().topk(column, mask, k=2, descending=False)
        assert out_values.size == 0
        assert positions.size == 0

    def test_non_rle_column_declines(self):
        assert RleKernel().topk(object(), np.ones(1, dtype=bool), 1, False) is None


# -- HAVING and var/std -------------------------------------------------------


class TestHavingAndMoments:
    def test_grouped_having_matches_reference(self, table, relation):
        tags = np.asarray(table.column("tag"))
        values = np.asarray(table.column("v"), dtype=np.int64)
        result = (
            relation.query()
            .group_by("tag")
            .agg(n=Count(), s=Sum("v"))
            .having(Between("n", 250, 10**9))
            .execute()
        )
        expected = {
            tag: int(np.sum(tags == tag))
            for tag in sorted(set(tags.tolist()))
            if np.sum(tags == tag) >= 250
        }
        assert dict(zip(result.columns["tag"], result.columns["n"])) == expected
        for tag, total in zip(result.columns["tag"], result.columns["s"]):
            assert total == int(values[tags == tag].sum())

    def test_having_applies_before_limit(self, relation, table):
        tags = np.asarray(table.column("tag"))
        counts = sorted(
            (int(np.sum(tags == tag)) for tag in set(tags.tolist())), reverse=True
        )
        qualifying = sum(1 for c in counts if c >= 200)
        result = (
            relation.query()
            .group_by("tag")
            .agg(n=Count())
            .having(Between("n", 200, 10**9))
            .limit(qualifying + 5)
            .execute()
        )
        assert result.n_rows == qualifying

    def test_ungrouped_having_drops_null_outputs(self, relation):
        # No rows match, so Min is None: a having over it drops the row
        # (SQL NULL semantics — a NULL never satisfies a predicate).
        empty = relation.query().where(Eq("v", -1)).agg(lo=Min("v"))
        result = empty.having(Between("lo", -(10**9), 10**9)).execute()
        assert result.n_rows == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200))
    def test_var_std_match_numpy(self, values):
        array = np.asarray(values, dtype=np.int64)
        table = Table.from_columns([("x", INT64, array)])
        relation = TableCompressor(block_size=64).compress(table)
        result = relation.query().agg(v=Var("x"), s=Std("x")).execute()
        assert result.scalar("v") == pytest.approx(array.var(), rel=1e-12, abs=1e-9)
        assert result.scalar("s") == pytest.approx(array.std(), rel=1e-12, abs=1e-9)

    def test_grouped_var_matches_numpy(self, table, relation):
        tags = np.asarray(table.column("tag"))
        values = np.asarray(table.column("v"), dtype=np.int64)
        result = relation.query().group_by("tag").agg(v=Var("v"), s=Std("v")).execute()
        for tag, var, std in zip(result.columns["tag"], result.columns["v"], result.columns["s"]):
            member = values[tags == tag]
            assert var == pytest.approx(member.var(), rel=1e-12, abs=1e-9)
            assert std == pytest.approx(member.std(), rel=1e-12, abs=1e-9)

    def test_var_over_rle_kernel_matches_decode_baseline(self):
        values = np.repeat(np.arange(-5, 15, dtype=np.int64), 37)
        table = Table.from_columns([("x", INT64, values)])
        builder = CompressionPlan.builder(table.schema)
        builder.vertical("x", "rle")
        relation = TableCompressor(builder.build(), block_size=128).compress(table)
        kernel = relation.query().where(Between("x", -2, 11)).agg(v=Var("x"), s=Std("x"))
        baseline = (
            relation.query(config=EngineConfig(use_kernels=False))
            .where(Between("x", -2, 11))
            .agg(v=Var("x"), s=Std("x"))
        )
        got, want = kernel.execute(), baseline.execute()
        assert got.scalar("v") == pytest.approx(want.scalar("v"), rel=1e-12)
        assert got.scalar("s") == pytest.approx(want.scalar("s"), rel=1e-12)

    def test_var_rejects_string_columns(self, relation):
        with pytest.raises(ValidationError):
            relation.query().agg(v=Var("tag")).execute()

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_having_and_var_parity_across_workers(self, table, relation, workers):
        serial = (
            relation.query()
            .where(Between("v", 50, 450))
            .group_by("tag")
            .agg(n=Count(), v=Var("v"))
            .having(Between("n", 100, 10**9))
            .execute()
        )
        parallel = (
            relation.query(config=EngineConfig(workers=workers))
            .where(Between("v", 50, 450))
            .group_by("tag")
            .agg(n=Count(), v=Var("v"))
            .having(Between("n", 100, 10**9))
            .execute()
        )
        assert list(parallel.columns["tag"]) == list(serial.columns["tag"])
        assert list(parallel.columns["n"]) == list(serial.columns["n"])
        assert list(parallel.columns["v"]) == pytest.approx(list(serial.columns["v"]))


# -- wire protocol ------------------------------------------------------------


class TestProtocol:
    def test_order_by_string_and_object_forms(self):
        request = parse_request({"table": "t", "select": ["v"], "order_by": "v"})
        assert request.order_by == "v" and request.order_desc is False
        request = parse_request({
            "table": "t",
            "select": ["v"],
            "order_by": {"column": "v", "desc": True},
            "k": 3,
        })
        assert request.order_by == "v" and request.order_desc is True
        assert request.limit == 3

    def test_having_parses_over_aggregates(self):
        request = parse_request({
            "table": "t",
            "aggregates": {"n": {"fn": "count"}},
            "having": {"op": "eq", "column": "n", "value": 3},
        })
        assert request.having is not None

    def test_var_and_std_aggregates_parse(self):
        request = parse_request({
            "table": "t",
            "aggregates": {"v": {"fn": "var", "column": "x"}, "s": {"fn": "std", "column": "x"}},
        })
        names = dict(request.aggregates)
        assert isinstance(names["v"], Var)
        assert isinstance(names["s"], Std)

    @pytest.mark.parametrize(
        "payload",
        [
            {"table": "t", "k": 5},  # k without order_by
            {"table": "t", "order_by": "v", "k": 5, "limit": 5},  # both k and limit
            {"table": "t", "order_by": ""},  # empty column
            {"table": "t", "order_by": {"column": "v", "extra": 1}},  # unknown key
            {"table": "t", "order_by": {"column": "v", "desc": "yes"}},  # bad desc
            {"table": "t", "order_by": "v", "group_by": ["g"],
             "aggregates": {"n": {"fn": "count"}}},  # order_by over aggregation
            {"table": "t", "having": {"op": "eq", "column": "n", "value": 1}},  # no aggregates
            {"table": "t", "order_by": "v", "k": -1},  # negative k
            {"table": "t", "aggregates": {"v": {"fn": "var"}}},  # var without column
        ],
    )
    def test_malformed_requests_are_rejected(self, payload):
        with pytest.raises(ValidationError):
            parse_request(payload)

    def test_build_query_matches_fluent_chain(self, relation):
        request = parse_request({
            "table": "t",
            "where": {"op": "between", "column": "v", "lo": 10, "hi": 400},
            "select": ["v"],
            "order_by": {"column": "v", "desc": True},
            "k": 8,
        })
        via_protocol = build_query(relation.query(), request).execute()
        via_fluent = (
            relation.query()
            .where(Between("v", 10, 400))
            .select("v")
            .order_by("v", desc=True)
            .limit(8)
            .execute()
        )
        assert list(via_protocol.columns["v"]) == list(via_fluent.columns["v"])
