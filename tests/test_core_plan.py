"""Unit tests for compression plans and the table compressor."""

import numpy as np
import pytest

from repro.core import CompressionPlan, PlanBuilder, TableCompressor
from repro.datasets import TaxiGenerator, taxi_multi_reference_config
from repro.dtypes import INT64, STRING
from repro.errors import ConfigurationError, UnknownColumnError
from repro.storage import Schema


class TestColumnPlanValidation:
    def test_horizontal_without_reference_rejected(self):
        from repro.core import ColumnPlan

        with pytest.raises(ConfigurationError):
            ColumnPlan(column="x", encoding="non_hierarchical")

    def test_vertical_with_reference_rejected(self):
        from repro.core import ColumnPlan

        with pytest.raises(ConfigurationError):
            ColumnPlan(column="x", encoding="for_bitpack", references=("y",))

    def test_multi_reference_needs_config(self):
        from repro.core import ColumnPlan

        with pytest.raises(ConfigurationError):
            ColumnPlan(column="x", encoding="multi_reference", references=("y",))


class TestCompressionPlan:
    def _schema(self):
        return Schema.from_pairs([("a", INT64), ("b", INT64), ("c", STRING)])

    def test_vertical_only_defaults_to_auto(self):
        plan = CompressionPlan.vertical_only(self._schema())
        assert plan.column_plan("a").encoding == "auto"
        assert plan.horizontal_columns() == ()

    def test_builder_diff_encode(self):
        plan = (
            PlanBuilder(self._schema())
            .diff_encode("b", reference="a")
            .build()
        )
        assert plan.column_plan("b").references == ("a",)
        assert plan.horizontal_columns() == ("b",)

    def test_self_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            PlanBuilder(self._schema()).diff_encode("a", reference="a").build()

    def test_reference_chain_rejected(self):
        builder = PlanBuilder(self._schema()).diff_encode("b", reference="a")
        with pytest.raises(ConfigurationError):
            builder.diff_encode("a", reference="c")

    def test_unknown_reference_rejected(self):
        with pytest.raises(UnknownColumnError):
            PlanBuilder(self._schema()).diff_encode("b", reference="zzz").build()

    def test_unknown_target_rejected(self):
        plan = PlanBuilder(self._schema()).build()
        with pytest.raises(UnknownColumnError):
            plan.column_plan("zzz")

    def test_describe_lists_every_column(self):
        plan = (
            PlanBuilder(self._schema())
            .hierarchical_encode("c", reference="a")
            .build()
        )
        text = plan.describe()
        assert "a: auto" in text
        assert "c: hierarchical" in text

    def test_from_suggestions_skips_conflicts(self, small_int_table):
        from repro.core import CorrelationDetector

        suggestions = CorrelationDetector(min_saving_rate=0.0).suggest(small_int_table)
        plan = CompressionPlan.from_suggestions(small_int_table.schema, suggestions)
        # Whatever was chosen must be a valid plan (no chains).
        for name in plan.horizontal_columns():
            for ref in plan.column_plan(name).references:
                assert not plan.column_plan(ref).is_horizontal


class TestTableCompressor:
    def test_vertical_compression_roundtrip(self, small_int_table):
        relation = TableCompressor(block_size=300).compress(small_int_table)
        assert relation.n_blocks == 4
        for name in small_int_table.schema.names:
            restored = np.concatenate(
                [np.asarray(b.decode_column(name)) for b in relation]
            )
            assert np.array_equal(restored, small_int_table.column(name))

    def test_horizontal_compression_roundtrip(self, dates_schema_table):
        plan = (
            CompressionPlan.builder(dates_schema_table.schema)
            .diff_encode("commit", reference="ship")
            .diff_encode("receipt", reference="ship")
            .build()
        )
        relation = TableCompressor(plan, block_size=256).compress(dates_schema_table)
        for name in ("commit", "receipt"):
            restored = np.concatenate([b.decode_column(name) for b in relation])
            assert np.array_equal(restored, dates_schema_table.column(name))

    def test_named_vertical_scheme(self, small_int_table):
        plan = (
            CompressionPlan.builder(small_int_table.schema)
            .vertical("base", "plain")
            .build()
        )
        relation = TableCompressor(plan, block_size=1_000).compress(small_int_table)
        assert relation.block(0).encoding_of("base") == "plain"

    def test_multi_reference_plan(self):
        taxi = TaxiGenerator().generate_monetary_only(5_000, seed=1)
        config = taxi_multi_reference_config()
        plan = (
            CompressionPlan.builder(taxi.schema)
            .multi_reference_encode("total_amount", config)
            .build()
        )
        relation = TableCompressor(plan, block_size=2_000).compress(taxi)
        restored = np.concatenate(
            [b.decode_column("total_amount") for b in relation]
        )
        assert np.array_equal(restored, taxi.column("total_amount"))
        assert relation.block(0).dependency("total_amount").kind == "multi_reference"

    def test_blocks_are_self_contained(self, dates_schema_table):
        """Each block must decode on its own (the paper's block property)."""
        plan = (
            CompressionPlan.builder(dates_schema_table.schema)
            .diff_encode("receipt", reference="ship")
            .build()
        )
        relation = TableCompressor(plan, block_size=100).compress(dates_schema_table)
        block = relation.block(3)
        decoded = block.decode_column("receipt")
        expected = dates_schema_table.column("receipt")[300:400]
        assert np.array_equal(decoded, expected)

    def test_column_sizes_helper(self, dates_schema_table):
        plan = (
            CompressionPlan.builder(dates_schema_table.schema)
            .diff_encode("receipt", reference="ship")
            .build()
        )
        sizes = TableCompressor(plan, block_size=500).column_sizes(dates_schema_table)
        assert set(sizes) == {"ship", "commit", "receipt"}
        assert sizes["receipt"] < sizes["commit"]

    def test_compression_reduces_total_size(self, dates_schema_table):
        plan = (
            CompressionPlan.builder(dates_schema_table.schema)
            .diff_encode("commit", reference="ship")
            .diff_encode("receipt", reference="ship")
            .build()
        )
        horizontal = TableCompressor(plan, block_size=500).compress(dates_schema_table)
        vertical = TableCompressor(block_size=500).compress(dates_schema_table)
        assert horizontal.size_bytes < vertical.size_bytes
