"""Unit tests for multi-reference encoding and the outlier store (paper §2.3)."""

import numpy as np
import pytest

from repro.core import (
    ArithmeticRule,
    MultiReferenceConfig,
    MultiReferenceEncoding,
    OutlierStore,
    ReferenceGroup,
)
from repro.datasets import TaxiGenerator, taxi_multi_reference_config
from repro.errors import ConfigurationError, DecodingError, EncodingError, ValidationError


@pytest.fixture
def simple_config():
    groups = (
        ReferenceGroup("A", ("a1", "a2")),
        ReferenceGroup("B", ("b",)),
    )
    rules = (ArithmeticRule(("A",)), ArithmeticRule(("A", "B")))
    return MultiReferenceConfig(groups=groups, rules=rules)


@pytest.fixture
def simple_data(rng):
    n = 2_000
    a1 = rng.integers(0, 100, size=n, dtype=np.int64)
    a2 = rng.integers(0, 100, size=n, dtype=np.int64)
    b = rng.integers(1, 50, size=n, dtype=np.int64)
    choose_b = rng.random(n) < 0.6
    outlier = rng.random(n) < 0.01
    total = np.where(choose_b, a1 + a2 + b, a1 + a2)
    total[outlier] += 10_000
    return {"a1": a1, "a2": a2, "b": b}, total, outlier


class TestConfig:
    def test_reference_columns_in_order(self, simple_config):
        assert simple_config.reference_columns == ("a1", "a2", "b")

    def test_code_width(self, simple_config):
        assert simple_config.code_bit_width == 1

    def test_four_rules_need_two_bits(self):
        config = taxi_multi_reference_config()
        assert config.code_bit_width == 2
        assert [r.label for r in config.rules] == ["A", "A + B", "A + C", "A + B + C"]

    def test_duplicate_group_names_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiReferenceConfig(
                groups=(ReferenceGroup("A", ("x",)), ReferenceGroup("A", ("y",))),
                rules=(ArithmeticRule(("A",)),),
            )

    def test_rule_referencing_unknown_group_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiReferenceConfig(
                groups=(ReferenceGroup("A", ("x",)),),
                rules=(ArithmeticRule(("A", "Z")),),
            )

    def test_empty_rules_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiReferenceConfig(groups=(ReferenceGroup("A", ("x",)),), rules=())

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError):
            ReferenceGroup("A", ())

    def test_duplicate_groups_in_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            ArithmeticRule(("A", "A"))


class TestEncoding:
    def test_roundtrip(self, simple_config, simple_data):
        references, total, _ = simple_data
        column = MultiReferenceEncoding(simple_config).encode(total, references)
        decoded = column.decode_with_reference(references)
        assert np.array_equal(decoded, total)

    def test_gather_subset(self, simple_config, simple_data, rng):
        references, total, _ = simple_data
        column = MultiReferenceEncoding(simple_config).encode(total, references)
        pos = rng.integers(0, len(total), size=100, dtype=np.int64)
        subset_refs = {name: values[pos] for name, values in references.items()}
        assert np.array_equal(
            column.gather_with_reference(pos, subset_refs), total[pos]
        )

    def test_outlier_fraction_matches_injection(self, simple_config, simple_data):
        references, total, outlier_mask = simple_data
        column = MultiReferenceEncoding(simple_config).encode(total, references)
        assert column.outliers.n_outliers == int(outlier_mask.sum())

    def test_code_width_stays_minimal_despite_outliers(self, simple_config, simple_data):
        """The paper's point: outliers do not force a wider code (no sentinel)."""
        references, total, _ = simple_data
        column = MultiReferenceEncoding(simple_config).encode(total, references)
        assert column.code_bit_width == 1

    def test_rule_statistics_sum_to_one(self, simple_config, simple_data):
        references, total, _ = simple_data
        column = MultiReferenceEncoding(simple_config).encode(total, references)
        stats = column.rule_statistics()
        assert sum(stats.probabilities) + stats.outlier_probability == pytest.approx(1.0)
        assert stats.codes == ["0", "1"]

    def test_first_matching_rule_wins(self):
        """When B is zero, A and A+B coincide; the first rule must be chosen."""
        config = MultiReferenceConfig(
            groups=(ReferenceGroup("A", ("a",)), ReferenceGroup("B", ("b",))),
            rules=(ArithmeticRule(("A",)), ArithmeticRule(("A", "B"))),
        )
        references = {
            "a": np.array([10, 10], dtype=np.int64),
            "b": np.array([0, 5], dtype=np.int64),
        }
        total = np.array([10, 15], dtype=np.int64)
        column = MultiReferenceEncoding(config).encode(total, references)
        stats = column.rule_statistics()
        assert stats.probabilities == [0.5, 0.5]

    def test_missing_reference_column_rejected(self, simple_config):
        with pytest.raises(EncodingError):
            MultiReferenceEncoding(simple_config).encode(
                np.array([1], dtype=np.int64), {"a1": np.array([1], dtype=np.int64)}
            )

    def test_reference_length_mismatch_rejected(self, simple_config):
        with pytest.raises(EncodingError):
            MultiReferenceEncoding(simple_config).encode(
                np.array([1, 2], dtype=np.int64),
                {
                    "a1": np.array([1, 2], dtype=np.int64),
                    "a2": np.array([1, 2], dtype=np.int64),
                    "b": np.array([1], dtype=np.int64),
                },
            )

    def test_decode_without_reference_raises(self, simple_config, simple_data):
        references, total, _ = simple_data
        column = MultiReferenceEncoding(simple_config).encode(total, references)
        with pytest.raises(DecodingError):
            column.decode()


class TestTaxiConfiguration:
    def test_taxi_mixture_close_to_paper(self):
        taxi = TaxiGenerator().generate_monetary_only(50_000, seed=11)
        config = taxi_multi_reference_config()
        references = {name: taxi.column(name) for name in config.reference_columns}
        column = MultiReferenceEncoding(config).encode(
            taxi.column("total_amount"), references
        )
        stats = column.rule_statistics()
        observed = dict(zip(stats.labels, stats.probabilities))
        assert observed["A"] == pytest.approx(0.3119, abs=0.02)
        assert observed["A + B"] == pytest.approx(0.6244, abs=0.02)
        assert stats.outlier_probability == pytest.approx(0.0032, abs=0.002)

    def test_taxi_roundtrip(self):
        taxi = TaxiGenerator().generate_monetary_only(20_000, seed=11)
        config = taxi_multi_reference_config()
        references = {name: taxi.column(name) for name in config.reference_columns}
        column = MultiReferenceEncoding(config).encode(
            taxi.column("total_amount"), references
        )
        assert np.array_equal(
            column.decode_with_reference(references), taxi.column("total_amount")
        )

    def test_taxi_saving_is_large(self):
        taxi = TaxiGenerator().generate_monetary_only(20_000, seed=11)
        config = taxi_multi_reference_config()
        references = {name: taxi.column(name) for name in config.reference_columns}
        column = MultiReferenceEncoding(config).encode(
            taxi.column("total_amount"), references
        )
        # Vertical FOR needs ~13-14 bits per row; the rule codes need 2.
        vertical_bytes = 13 * taxi.n_rows / 8
        assert column.size_bytes < 0.35 * vertical_bytes


class TestOutlierStore:
    def test_apply_overrides_positions(self):
        store = OutlierStore(np.array([2, 5]), np.array([100, 200]))
        reconstructed = np.zeros(8, dtype=np.int64)
        out = store.apply(np.arange(8), reconstructed)
        assert out[2] == 100 and out[5] == 200
        assert out[[0, 1, 3, 4, 6, 7]].sum() == 0

    def test_apply_on_subset_positions(self):
        store = OutlierStore(np.array([10]), np.array([7]))
        out = store.apply(np.array([9, 10, 11]), np.array([1, 2, 3], dtype=np.int64))
        assert out.tolist() == [1, 7, 3]

    def test_membership(self):
        store = OutlierStore(np.array([1, 4]), np.array([11, 44]))
        is_outlier, values = store.membership(np.array([0, 1, 4, 9]))
        assert is_outlier.tolist() == [False, True, True, False]
        assert values[1] == 11 and values[2] == 44

    def test_from_mask(self):
        values = np.array([5, 6, 7, 8], dtype=np.int64)
        store = OutlierStore.from_mask(np.array([False, True, False, True]), values)
        assert store.positions.tolist() == [1, 3]
        assert store.values.tolist() == [6, 8]

    def test_empty_store(self):
        store = OutlierStore.empty()
        assert not store
        assert store.size_bytes > 0  # header only
        out = store.apply(np.array([0, 1]), np.array([9, 9], dtype=np.int64))
        assert out.tolist() == [9, 9]

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ValidationError):
            OutlierStore(np.array([1, 1]), np.array([2, 3]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            OutlierStore(np.array([1, 2]), np.array([3]))

    def test_fraction(self):
        store = OutlierStore(np.array([0, 1, 2]), np.array([0, 0, 0]))
        assert store.fraction_of(1_000) == pytest.approx(0.003)
        with pytest.raises(ValidationError):
            store.fraction_of(0)
