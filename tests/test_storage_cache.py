"""Unit tests for the byte-budgeted LRU block cache and the I/O counters."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ValidationError
from repro.storage import BlockCache, IOMetrics


def _loader(value, size):
    return lambda: (value, size)


class TestBlockCacheBasics:
    def test_get_or_load_caches_and_hits(self):
        cache = BlockCache(budget_bytes=100)
        calls = []

        def loader():
            calls.append(1)
            return "payload", 10

        assert cache.get_or_load("a", loader) == "payload"
        assert cache.get_or_load("a", loader) == "payload"
        assert len(calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.current_bytes == 10
        assert "a" in cache
        assert cache.get("a") == "payload"
        assert cache.get("missing") is None

    def test_lru_eviction_order(self):
        cache = BlockCache(budget_bytes=30)
        cache.get_or_load("a", _loader("A", 10))
        cache.get_or_load("b", _loader("B", 10))
        cache.get_or_load("c", _loader("C", 10))
        # Touch "a" so "b" becomes the least recently used entry.
        assert cache.get_or_load("a", _loader("A2", 10)) == "A"
        cache.get_or_load("d", _loader("D", 10))
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.stats.evictions == 1
        assert cache.stats.current_bytes == 30

    def test_budget_zero_caches_nothing_but_stays_correct(self):
        cache = BlockCache(budget_bytes=0)
        for _ in range(3):
            assert cache.get_or_load("a", _loader("A", 10)) == "A"
        assert len(cache) == 0
        assert cache.stats.oversized == 3
        assert cache.stats.misses == 3

    def test_oversized_entry_is_returned_uncached(self):
        cache = BlockCache(budget_bytes=10)
        assert cache.get_or_load("big", _loader("BIG", 50)) == "BIG"
        assert "big" not in cache
        assert cache.stats.oversized == 1
        # Smaller entries still cache normally afterwards.
        cache.get_or_load("small", _loader("S", 5))
        assert "small" in cache

    def test_unbounded_budget(self):
        cache = BlockCache(budget_bytes=None)
        for i in range(100):
            cache.get_or_load(i, _loader(i, 1_000_000))
        assert len(cache) == 100
        assert cache.stats.evictions == 0

    def test_clear_resets_entries_and_sizes(self):
        cache = BlockCache(budget_bytes=100)
        cache.get_or_load("a", _loader("A", 10))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.current_bytes == 0
        assert cache.get("a") is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValidationError):
            BlockCache(budget_bytes=-1)

    def test_negative_entry_size_rejected(self):
        cache = BlockCache(budget_bytes=100)
        with pytest.raises(ValidationError):
            cache.get_or_load("a", _loader("A", -5))

    def test_loader_error_propagates_and_caches_nothing(self):
        cache = BlockCache(budget_bytes=100)

        def failing():
            raise OSError("disk gone")

        with pytest.raises(OSError):
            cache.get_or_load("a", failing)
        assert "a" not in cache
        # The key is retryable after a failed load.
        assert cache.get_or_load("a", _loader("A", 1)) == "A"

    def test_stats_describe_mentions_hit_rate(self):
        cache = BlockCache(budget_bytes=100)
        cache.get_or_load("a", _loader("A", 1))
        cache.get_or_load("a", _loader("A", 1))
        text = cache.stats.describe()
        assert "1/2 hits" in text


class TestBlockCacheConcurrency:
    def test_single_flight_loading(self):
        """Concurrent readers of one key share a single loader invocation."""
        cache = BlockCache(budget_bytes=1_000)
        started = threading.Event()
        release = threading.Event()
        calls = []

        def slow_loader():
            calls.append(1)
            started.set()
            release.wait(timeout=5)
            return "payload", 10

        results = []

        def reader():
            results.append(cache.get_or_load("k", slow_loader))

        threads = [threading.Thread(target=reader) for _ in range(8)]
        threads[0].start()
        assert started.wait(timeout=5)
        for t in threads[1:]:
            t.start()
        release.set()
        for t in threads:
            t.join(timeout=5)
        assert results == ["payload"] * 8
        assert len(calls) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 7

    def test_parallel_loads_of_distinct_keys(self):
        cache = BlockCache(budget_bytes=10_000)
        barrier = threading.Barrier(4, timeout=5)

        def loader_for(key):
            def loader():
                # All four loaders must be in flight at once to pass the
                # barrier: proves distinct keys do not serialise.
                barrier.wait()
                return key, 10

            return loader

        results = {}

        def reader(key):
            results[key] = cache.get_or_load(key, loader_for(key))

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert results == {0: 0, 1: 1, 2: 2, 3: 3}


class TestIOMetrics:
    def test_record_and_reset(self):
        io = IOMetrics()
        io.record_block(100)
        io.record_block(50)
        io.record_footer(10)
        assert io.bytes_read == 150
        assert io.blocks_read == 2
        assert io.footer_bytes_read == 10
        assert "2 block(s)" in io.describe()
        assert "150 bytes" in io.describe()
        io.reset()
        assert io.bytes_read == 0
        assert io.blocks_read == 0
        assert io.footer_bytes_read == 0

    def test_column_granular_accounting(self):
        io = IOMetrics()
        # First column fetch of a 1000-byte, 4-column block: the block's
        # bytes become the baseline and all 4 columns start skipped.
        io.record_column_block(1_000, 4)
        io.record_column(100, new_column=True)
        io.record_column(150, new_column=True)
        io.record_column(100, new_column=False)  # re-read after eviction
        assert io.column_block_bytes == 1_000
        assert io.column_bytes_read == 350
        assert io.columns_read == 3
        assert io.columns_skipped == 2
        # Column reads count into the total alongside full-block reads.
        io.record_block(1_000)
        assert io.bytes_read == 1_350
        io.record_prefetch_issued(2)
        io.record_prefetch_hit()
        assert io.prefetch_issued == 2
        assert io.prefetch_hits == 1
        io.reset()
        assert io.column_bytes_read == 0
        assert io.columns_skipped == 0
        assert io.prefetch_issued == 0

    def test_thread_safe_counting(self):
        io = IOMetrics()

        def worker():
            for _ in range(1_000):
                io.record_block(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert io.blocks_read == 4_000
        assert io.bytes_read == 4_000


class TestTenantArbitration:
    """Round-robin budget arbitration between cache tenants (key[0])."""

    def test_occupancy_by_tenant(self):
        cache = BlockCache(budget_bytes=1_000)
        cache.get_or_load(("t1", 0), _loader("A", 100))
        cache.get_or_load(("t1", 1), _loader("B", 50))
        cache.get_or_load(("t2", 0), _loader("C", 10))
        occupancy = cache.occupancy()
        assert occupancy["t1"].entries == 2
        assert occupancy["t1"].bytes == 150
        assert occupancy["t2"].entries == 1
        assert occupancy["t2"].bytes == 10

    def test_round_robin_eviction_spreads_across_tenants(self):
        """A hot tenant cannot starve a cold one out of the cache entirely.

        With global LRU, inserting many fresh entries for tenant "hot" would
        evict every "cold" entry first.  Round-robin arbitration alternates
        victims between tenants, so "cold" retains entries after the storm.
        """
        cache = BlockCache(budget_bytes=100)
        for i in range(5):
            cache.get_or_load(("cold", i), _loader(i, 10))
        # 50 bytes resident for "cold"; now "hot" floods the cache with 10
        # fresh entries, forcing 5 evictions.  Global LRU would take all 5
        # from "cold" (its entries are the globally oldest); round-robin
        # alternates, so "cold" keeps 2 entries.
        for i in range(10):
            cache.get_or_load(("hot", i), _loader(i, 10))
        occupancy = cache.occupancy()
        assert cache.stats.evictions == 5
        assert "cold" in occupancy, "cold tenant was starved out"
        assert occupancy["cold"].entries == 2
        assert occupancy["hot"].entries == 8
        assert cache.stats.current_bytes == 100

    def test_eviction_within_tenant_is_lru(self):
        cache = BlockCache(budget_bytes=30)
        cache.get_or_load(("t", "a"), _loader("A", 10))
        cache.get_or_load(("t", "b"), _loader("B", 10))
        cache.get_or_load(("t", "c"), _loader("C", 10))
        # Touch "a" so "b" is the tenant's least recently used entry.
        assert cache.get_or_load(("t", "a"), _loader("A2", 10)) == "A"
        cache.get_or_load(("t", "d"), _loader("D", 10))
        assert ("t", "b") not in cache
        assert ("t", "a") in cache and ("t", "c") in cache and ("t", "d") in cache

    def test_non_tuple_keys_share_the_default_tenant(self):
        cache = BlockCache(budget_bytes=20)
        cache.get_or_load("x", _loader("X", 10))
        cache.get_or_load("y", _loader("Y", 10))
        occupancy = cache.occupancy()
        assert occupancy[None].entries == 2
        cache.get_or_load("z", _loader("Z", 10))
        assert "x" not in cache  # plain LRU within the single tenant

    def test_reinsert_same_key_does_not_double_count(self):
        cache = BlockCache(budget_bytes=100)
        cache.get_or_load(("t", 1), _loader("A", 40))
        # Force a reinsert of the same key through clear-and-load again.
        cache.clear()
        cache.get_or_load(("t", 1), _loader("A", 40))
        assert cache.stats.current_bytes == 40

    def test_clear_resets_tenants_and_cursor(self):
        cache = BlockCache(budget_bytes=100)
        cache.get_or_load(("t1", 0), _loader("A", 10))
        cache.get_or_load(("t2", 0), _loader("B", 10))
        cache.clear()
        assert cache.occupancy() == {}
        assert len(cache) == 0
