"""Unit tests for selection vectors, scans, the executor, and latency harness."""

import numpy as np
import pytest

from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64, STRING
from repro.errors import UnknownColumnError, ValidationError
from repro.query import (
    PAPER_SELECTIVITIES,
    Predicate,
    QueryExecutor,
    generate_selection_vector,
    generate_selection_vectors,
    latency_ratio,
    materialize_columns,
    measure_query_latency,
    sweep_query_latency,
)
from repro.storage import Table


@pytest.fixture
def compressed(dates_schema_table):
    plan = (
        CompressionPlan.builder(dates_schema_table.schema)
        .diff_encode("receipt", reference="ship")
        .build()
    )
    return TableCompressor(plan, block_size=256).compress(dates_schema_table)


class TestSelectionVectors:
    def test_size_matches_selectivity(self):
        vector = generate_selection_vector(10_000, 0.01, np.random.default_rng(0))
        assert vector.n_selected == 100
        assert vector.actual_selectivity == pytest.approx(0.01)

    def test_row_ids_sorted_and_unique(self):
        vector = generate_selection_vector(5_000, 0.3, np.random.default_rng(1))
        rows = vector.row_ids
        assert np.all(np.diff(rows) > 0)

    def test_full_selectivity_selects_everything(self):
        vector = generate_selection_vector(1_000, 1.0)
        assert np.array_equal(vector.row_ids, np.arange(1_000))

    def test_zero_selectivity(self):
        vector = generate_selection_vector(1_000, 0.0)
        assert vector.n_selected == 0

    def test_invalid_selectivity(self):
        with pytest.raises(ValidationError):
            generate_selection_vector(100, 1.5)

    def test_ten_vectors_are_independent_but_seeded(self):
        a = generate_selection_vectors(10_000, 0.01, count=10, seed=7)
        b = generate_selection_vectors(10_000, 0.01, count=10, seed=7)
        assert len(a) == 10
        assert not np.array_equal(a[0].row_ids, a[1].row_ids)
        assert np.array_equal(a[3].row_ids, b[3].row_ids)

    def test_paper_selectivities_constant(self):
        assert PAPER_SELECTIVITIES[0] == 0.001
        assert PAPER_SELECTIVITIES[-1] == 1.0


class TestMaterialization:
    def test_vertical_column(self, compressed, dates_schema_table):
        vector = generate_selection_vector(dates_schema_table.n_rows, 0.1, np.random.default_rng(3))
        out = materialize_columns(compressed, ["ship"], vector)
        assert np.array_equal(
            out["ship"], dates_schema_table.column("ship")[vector.row_ids]
        )

    def test_horizontal_column_alone(self, compressed, dates_schema_table):
        vector = generate_selection_vector(
            dates_schema_table.n_rows, 0.05, np.random.default_rng(4)
        )
        out = materialize_columns(compressed, ["receipt"], vector)
        assert np.array_equal(
            out["receipt"], dates_schema_table.column("receipt")[vector.row_ids]
        )

    def test_both_columns(self, compressed, dates_schema_table):
        vector = generate_selection_vector(dates_schema_table.n_rows, 0.5, np.random.default_rng(5))
        out = materialize_columns(compressed, ["ship", "receipt"], vector)
        for name in ("ship", "receipt"):
            assert np.array_equal(
                out[name], dates_schema_table.column(name)[vector.row_ids]
            )

    def test_preserves_selection_order_across_blocks(self, compressed, dates_schema_table):
        rows = np.array([900, 5, 513, 2, 999], dtype=np.int64)
        out = materialize_columns(compressed, ["receipt"], rows)
        assert np.array_equal(out["receipt"], dates_schema_table.column("receipt")[rows])

    def test_string_columns(self):
        table = Table.from_columns(
            [
                ("k", INT64, np.arange(600, dtype=np.int64)),
                ("s", STRING, [f"name-{i % 11}" for i in range(600)]),
            ]
        )
        relation = TableCompressor(block_size=200).compress(table)
        rows = np.array([599, 0, 311], dtype=np.int64)
        out = materialize_columns(relation, ["s"], rows)
        assert out["s"] == ["name-5", "name-0", "name-3"]

    def test_unknown_column(self, compressed):
        with pytest.raises(UnknownColumnError):
            materialize_columns(compressed, ["nope"], np.array([0]))

    def test_empty_selection(self, compressed):
        out = materialize_columns(compressed, ["ship"], np.array([], dtype=np.int64))
        assert out["ship"].size == 0


class TestQueryExecutor:
    @pytest.fixture
    def executor(self, dates_schema_table):
        relation = TableCompressor(block_size=300).compress(dates_schema_table)
        return QueryExecutor(relation), dates_schema_table

    def test_filter_equals(self, executor):
        ex, table = executor
        ship = table.column("ship")
        target = int(ship[17])
        rows = ex.filter(Predicate.equals("ship", target))
        assert np.array_equal(rows, np.flatnonzero(ship == target))

    def test_filter_between(self, executor):
        ex, table = executor
        ship = table.column("ship")
        rows = ex.filter(Predicate.between("ship", 8_100, 8_200))
        assert np.array_equal(rows, np.flatnonzero((ship >= 8_100) & (ship <= 8_200)))

    def test_select_with_predicate(self, executor):
        ex, table = executor
        result = ex.select(["receipt"], Predicate.between("ship", 8_100, 8_110))
        expected_rows = np.flatnonzero(
            (table.column("ship") >= 8_100) & (table.column("ship") <= 8_110)
        )
        assert np.array_equal(result.row_ids, expected_rows)
        assert np.array_equal(
            result.column("receipt"), table.column("receipt")[expected_rows]
        )

    def test_select_without_predicate_returns_everything(self, executor):
        ex, table = executor
        result = ex.select(["ship"])
        assert result.n_rows == table.n_rows

    def test_count(self, executor):
        ex, table = executor
        assert ex.count(Predicate.between("ship", 8_000, 8_499)) == 500

    def test_is_in_predicate_on_strings(self):
        table = Table.from_columns(
            [("s", STRING, ["a", "b", "c", "a", "b"])]
        )
        relation = TableCompressor(block_size=5).compress(table)
        ex = QueryExecutor(relation)
        assert ex.count(Predicate.is_in("s", ["a", "c"])) == 3

    def test_unknown_predicate_column(self, executor):
        ex, _ = executor
        with pytest.raises(UnknownColumnError):
            ex.filter(Predicate.equals("nope", 1))


class TestLatencyHarness:
    def test_measurement_statistics(self, compressed):
        measurement = measure_query_latency(
            compressed, ["receipt"], selectivity=0.1, n_vectors=3
        )
        assert len(measurement.timings) == 3
        assert measurement.minimum <= measurement.mean
        assert measurement.mean_milliseconds() == pytest.approx(measurement.mean * 1e3)

    def test_sweep_and_ratio(self, compressed, dates_schema_table):
        baseline_relation = TableCompressor(block_size=256).compress(dates_schema_table)
        selectivities = [0.01, 0.1]
        ours = sweep_query_latency(compressed, ["receipt"], selectivities, n_vectors=2)
        base = sweep_query_latency(baseline_relation, ["receipt"], selectivities, n_vectors=2)
        ratios = latency_ratio(ours, base)
        assert set(ratios) == set(selectivities)
        assert all(r > 0 for r in ratios.values())

    def test_ratio_requires_shared_selectivities(self, compressed):
        a = sweep_query_latency(compressed, ["receipt"], [0.01], n_vectors=1)
        b = sweep_query_latency(compressed, ["receipt"], [0.5], n_vectors=1)
        with pytest.raises(ValidationError):
            latency_ratio(a, b)

    def test_invalid_repeats(self, compressed):
        with pytest.raises(ValidationError):
            measure_query_latency(compressed, ["receipt"], 0.1, repeats=0)

    def test_sweep_accessors(self, compressed):
        sweep = sweep_query_latency(compressed, ["ship"], [0.01, 0.05], n_vectors=1)
        assert sweep.selectivities == (0.01, 0.05)
        assert len(sweep.mean_series()) == 2
        with pytest.raises(ValidationError):
            sweep.measurement(0.9)
