"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DmvGenerator,
    LdbcMessageGenerator,
    TaxiGenerator,
    TpchLineitemGenerator,
)
from repro.dtypes import DATE, INT64, STRING
from repro.storage import Table


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_int_table() -> Table:
    """A tiny integer table with an obvious correlated column pair."""
    base = np.arange(0, 1_000, dtype=np.int64) * 3 + 10_000
    offset = np.tile(np.arange(1, 11, dtype=np.int64), 100)
    return Table.from_columns(
        [
            ("base", INT64, base),
            ("shifted", INT64, base + offset),
            ("independent", INT64, np.arange(1_000, dtype=np.int64) % 7),
        ]
    )


@pytest.fixture
def city_zip_table() -> Table:
    """A tiny hierarchical (city, zip) table mirroring the paper's Fig. 3."""
    cities = ["Cortland", "Naples", "Naples", "Naples", "NYC", "NYC"] * 50
    zips = [13045, 34102, 34112, 34102, 10016, 10001] * 50
    return Table.from_columns(
        [
            ("city", STRING, cities),
            ("zip_code", INT64, np.asarray(zips, dtype=np.int64)),
        ]
    )


@pytest.fixture(scope="session")
def tpch_dates() -> Table:
    return TpchLineitemGenerator().generate_dates_only(20_000, seed=7)


@pytest.fixture(scope="session")
def taxi_table() -> Table:
    return TaxiGenerator().generate(20_000, seed=7)


@pytest.fixture(scope="session")
def dmv_table() -> Table:
    return DmvGenerator().generate_pair_only(20_000, seed=7)


@pytest.fixture(scope="session")
def ldbc_table() -> Table:
    return LdbcMessageGenerator().generate_pair_only(20_000, seed=7)


@pytest.fixture
def dates_schema_table() -> Table:
    """Three date-like columns with exact, known differences."""
    ship = np.arange(8_000, 9_000, dtype=np.int64)
    return Table.from_columns(
        [
            ("ship", DATE, ship),
            ("commit", DATE, ship + 45),
            ("receipt", DATE, ship + 7),
        ]
    )
