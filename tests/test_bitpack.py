"""Unit tests for the bit-packing kernel."""

import numpy as np
import pytest

from repro.bitpack import (
    BitPackedArray,
    gather,
    pack,
    packed_size_bytes,
    required_bits,
    unpack,
)
from repro.errors import DecodingError, ValidationError


class TestRequiredBits:
    def test_zero_needs_no_bits(self):
        assert required_bits(0) == 0

    def test_small_values(self):
        assert required_bits(1) == 1
        assert required_bits(2) == 2
        assert required_bits(3) == 2
        assert required_bits(4) == 3

    def test_powers_of_two_boundaries(self):
        for k in range(1, 63):
            assert required_bits(2**k - 1) == k
            assert required_bits(2**k) == k + 1

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            required_bits(-1)


class TestPackedSize:
    def test_rounds_up_to_bytes(self):
        assert packed_size_bytes(3, 5) == 2  # 15 bits -> 2 bytes
        assert packed_size_bytes(8, 8) == 8
        assert packed_size_bytes(0, 13) == 0

    def test_zero_width(self):
        assert packed_size_bytes(1000, 0) == 0

    def test_invalid_width(self):
        with pytest.raises(ValidationError):
            packed_size_bytes(10, 65)

    def test_negative_count(self):
        with pytest.raises(ValidationError):
            packed_size_bytes(-1, 8)


class TestPackUnpackRoundTrip:
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 7, 8, 12, 13, 16, 24, 31, 33, 48, 63, 64])
    def test_roundtrip_random(self, width):
        rng = np.random.default_rng(width)
        high = (1 << width) - 1 if width < 64 else (1 << 63) - 1
        values = rng.integers(0, high + 1, size=257, dtype=np.uint64).astype(np.int64)
        values = np.abs(values)
        words = pack(values, width)
        assert np.array_equal(unpack(words, width, len(values)), values)

    def test_roundtrip_zero_width(self):
        values = np.zeros(100, dtype=np.int64)
        words = pack(values, 0)
        assert words.size == 0
        assert np.array_equal(unpack(words, 0, 100), values)

    def test_empty_input(self):
        words = pack(np.zeros(0, dtype=np.int64), 7)
        assert unpack(words, 7, 0).size == 0

    def test_values_straddling_word_boundary(self):
        # Width 5: value index 12 straddles bits 60..64.
        values = np.arange(32, dtype=np.int64)
        words = pack(values, 5)
        assert np.array_equal(unpack(words, 5, 32), values)

    def test_value_too_large_rejected(self):
        with pytest.raises(ValidationError):
            pack(np.array([8], dtype=np.int64), 3)

    def test_negative_values_rejected(self):
        with pytest.raises(ValidationError):
            pack(np.array([-1], dtype=np.int64), 8)

    def test_nonzero_values_with_zero_width_rejected(self):
        with pytest.raises(ValidationError):
            pack(np.array([1], dtype=np.int64), 0)

    def test_float_input_rejected(self):
        with pytest.raises(ValidationError):
            pack(np.array([1.5]), 8)


class TestGather:
    def test_gather_matches_unpack(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 1000, size=500, dtype=np.int64)
        words = pack(values, 10)
        positions = rng.integers(0, 500, size=64, dtype=np.int64)
        assert np.array_equal(gather(words, 10, positions), values[positions])

    def test_gather_preserves_order_and_duplicates(self):
        values = np.arange(100, dtype=np.int64)
        words = pack(values, 7)
        positions = np.array([5, 5, 3, 99, 0, 3], dtype=np.int64)
        assert np.array_equal(gather(words, 7, positions), values[positions])

    def test_gather_empty_positions(self):
        words = pack(np.arange(10, dtype=np.int64), 4)
        assert gather(words, 4, np.array([], dtype=np.int64)).size == 0

    def test_gather_out_of_range(self):
        words = pack(np.arange(10, dtype=np.int64), 4)
        with pytest.raises(DecodingError):
            gather(words, 4, np.array([100], dtype=np.int64))

    def test_gather_negative_position(self):
        words = pack(np.arange(10, dtype=np.int64), 4)
        with pytest.raises(DecodingError):
            gather(words, 4, np.array([-1], dtype=np.int64))


class TestBitPackedArray:
    def test_from_values_minimal_width(self):
        packed = BitPackedArray.from_values(np.array([0, 5, 7], dtype=np.int64))
        assert packed.bit_width == 3
        assert len(packed) == 3

    def test_explicit_width(self):
        packed = BitPackedArray.from_values(np.array([1, 2, 3], dtype=np.int64), 16)
        assert packed.bit_width == 16

    def test_to_numpy_roundtrip(self):
        values = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.int64)
        packed = BitPackedArray.from_values(values)
        assert np.array_equal(packed.to_numpy(), values)

    def test_gather_bounds_checked(self):
        packed = BitPackedArray.from_values(np.arange(16, dtype=np.int64))
        with pytest.raises(DecodingError):
            packed.gather(np.array([16], dtype=np.int64))

    def test_size_bytes_is_logical(self):
        packed = BitPackedArray.from_values(np.arange(8, dtype=np.int64), 3)
        assert packed.size_bytes == 3  # 24 bits

    def test_empty_array(self):
        packed = BitPackedArray.from_values(np.zeros(0, dtype=np.int64))
        assert packed.size_bytes == 0
        assert packed.to_numpy().size == 0
