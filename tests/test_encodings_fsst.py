"""Unit tests for the FSST-style string codec."""

import numpy as np
import pytest

from repro.dtypes import INT64, STRING
from repro.encodings import FsstEncoding, SymbolTable, train_symbol_table
from repro.errors import DecodingError, EncodingError


@pytest.fixture
def urls():
    return [
        f"https://www.example.com/products/item-{i % 100}/details?page={i % 7}"
        for i in range(500)
    ]


class TestSymbolTable:
    def test_encode_decode_roundtrip(self):
        table = SymbolTable([b"http", b"://", b"www.", b"com"])
        payload = table.encode_bytes(b"http://www.example.com")
        assert table.decode_bytes(payload) == b"http://www.example.com"

    def test_known_substrings_compress(self):
        table = SymbolTable([b"abcdefgh"])
        assert len(table.encode_bytes(b"abcdefgh" * 4)) == 4

    def test_escape_for_unknown_bytes(self):
        table = SymbolTable([b"xy"])
        payload = table.encode_bytes(b"zz")
        assert len(payload) == 4  # two escape pairs

    def test_too_many_symbols_rejected(self):
        with pytest.raises(EncodingError):
            SymbolTable([bytes([i % 250, i // 250]) for i in range(300)])

    def test_symbol_length_bounds(self):
        with pytest.raises(EncodingError):
            SymbolTable([b"123456789"])  # 9 bytes
        with pytest.raises(EncodingError):
            SymbolTable([b""])

    def test_corrupt_payload_raises(self):
        table = SymbolTable([b"ab"])
        with pytest.raises(DecodingError):
            table.decode_bytes(bytes([255]))  # dangling escape

    def test_size_accounting(self):
        table = SymbolTable([b"ab", b"cde"])
        assert table.size_bytes == 2 + 5


class TestTrainer:
    def test_trainer_finds_common_substrings(self, urls):
        table = train_symbol_table(urls)
        encoded = table.encode_bytes(urls[0].encode())
        assert len(encoded) < len(urls[0])

    def test_trainer_on_empty_input(self):
        table = train_symbol_table([])
        assert len(table) >= 1


class TestFsstEncoding:
    def test_roundtrip(self, urls):
        column = FsstEncoding().encode(urls, STRING)
        assert column.decode() == urls

    def test_gather(self, urls):
        column = FsstEncoding().encode(urls, STRING)
        pos = np.array([0, 17, 17, 499], dtype=np.int64)
        assert column.gather(pos) == [urls[0], urls[17], urls[17], urls[499]]

    def test_gather_out_of_range(self, urls):
        column = FsstEncoding().encode(urls, STRING)
        with pytest.raises(DecodingError):
            column.gather(np.array([len(urls)]))

    def test_compresses_repetitive_strings(self, urls):
        column = FsstEncoding().encode(urls, STRING)
        raw_payload = sum(len(u.encode()) for u in urls) + 8 * len(urls)
        assert column.size_bytes < raw_payload

    def test_unicode_roundtrip(self):
        values = ["München", "Zürich", "北京", "München"] * 20
        column = FsstEncoding().encode(values, STRING)
        assert column.decode() == values

    def test_rejects_integer_columns(self):
        with pytest.raises(EncodingError):
            FsstEncoding().encode(np.arange(4), INT64)

    def test_empty_strings(self):
        values = ["", "a", "", "bb"]
        column = FsstEncoding().encode(values, STRING)
        assert column.decode() == values
