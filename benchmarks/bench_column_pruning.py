"""Benchmark for column-granular storage: bytes read vs. projected columns.

Measures what the format-v3 per-column sub-segments buy a selective
projection over a *wide* table (20 columns) served from disk, against the
same relation written as format v2 (block-granular I/O):

* **bytes-read scaling** — a cold query projecting ``k`` of 20 columns
  reads ``O(k)`` column sub-segments on v3 but whole block segments on v2;
  the reporting test sweeps ``k`` and asserts the acceptance bar: at 2 of
  20 columns, v3 cold bytes-read is ``<= 25%`` of v2's.
* **latency, cold and warm** — per-``k`` cold medians (fresh relation and
  cache per run) and warm medians (same relation re-queried), v3 with and
  without the read-ahead pool, so the prefetch win is visible separately
  from the byte win.

Results are bit-identical across v2, v3 and the in-memory relation — the
parity is asserted on every configuration measured.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _bench_config import ooc_rows
from repro.core import TableCompressor
from repro.dtypes import INT64
from repro.query import Between
from repro.storage import DiskRelation, Table, write_table

N_COLUMNS = 20
N_BLOCKS = 16
PROJECTED_COUNTS = (1, 2, 5, 10, 20)
#: Acceptance bar: cold bytes read by a 2-of-20-column query on v3 relative
#: to the same query on v2.
V3_BYTES_BAR = 0.25


def _wide_table(n_rows: int, seed: int = 42) -> Table:
    """A 20-column table: one sorted key plus 19 similarly-sized int columns."""
    rng = np.random.default_rng(seed)
    columns = [("key", INT64, np.sort(rng.integers(0, max(n_rows // 8, 64), n_rows)))]
    for i in range(1, N_COLUMNS):
        columns.append((f"c{i:02d}", INT64, rng.integers(0, 1 << 16, n_rows)))
    return Table.from_columns(columns)


@pytest.fixture(scope="module")
def wide_files(tmp_path_factory):
    """The wide relation written as v2 and v3 files, plus the raw key column."""
    n_rows = ooc_rows()
    table = _wide_table(n_rows)
    block_size = max(1, -(-n_rows // N_BLOCKS))
    relation = TableCompressor(block_size=block_size).compress(table)
    root = tmp_path_factory.mktemp("column-pruning")
    paths = {}
    for version in (2, 3):
        paths[version] = root / f"wide-v{version}.corra"
        write_table(paths[version], relation, version=version)
    return paths, relation, np.asarray(table.column("key"))


def _projection(k: int) -> tuple[str, ...]:
    """The predicate key plus the first k-1 payload columns."""
    return ("key",) + tuple(f"c{i:02d}" for i in range(1, k))


def _predicate(key: np.ndarray, selectivity: float = 0.1) -> Between:
    cutoff = int(key[min(int(selectivity * key.size), key.size - 1)])
    return Between("key", int(key[0]), cutoff)


def _run_query(relation: DiskRelation, predicate: Between, projection: tuple[str, ...]):
    return relation.query().where(predicate).select(*projection).execute()


class TestColumnPruningLatency:
    @pytest.mark.parametrize("k", (2, 20))
    @pytest.mark.parametrize("version", (2, 3))
    def test_cold_projection(self, benchmark, wide_files, version, k):
        paths, _, key = wide_files
        predicate = _predicate(key)
        projection = _projection(k)

        def cold():
            with DiskRelation(paths[version]) as relation:
                return _run_query(relation, predicate, projection)

        benchmark(cold)

    @pytest.mark.parametrize("k", (2, 20))
    def test_warm_projection_v3(self, benchmark, wide_files, k):
        paths, _, key = wide_files
        predicate = _predicate(key)
        projection = _projection(k)
        with DiskRelation(paths[3]) as relation:
            chain = relation.query().where(predicate).select(*projection)
            chain.execute()  # fault the working set in, warm the planner memo
            benchmark(chain.execute)


def test_print_column_pruning_trajectory(wide_files):
    """Record bytes/latency per projected-column count; assert the bars."""
    paths, relation, key = wide_files
    predicate = _predicate(key)
    repeats = 5

    def _median(fn) -> float:
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return float(np.median(timings))

    print()
    bytes_read = {2: {}, 3: {}}
    for k in PROJECTED_COUNTS:
        projection = _projection(k)
        expected = _run_query(relation, predicate, projection)
        row = {}
        for version in (2, 3):

            def cold(version=version, projection=projection):
                with DiskRelation(paths[version]) as fresh:
                    return _run_query(fresh, predicate, projection)

            cold_seconds = _median(cold)

            with DiskRelation(paths[version]) as fresh:
                result = _run_query(fresh, predicate, projection)
                assert np.array_equal(result.row_ids, expected.row_ids)
                for name in projection:
                    assert np.array_equal(result.column(name), expected.column(name))
                bytes_read[version][k] = fresh.io.bytes_read
                warm_seconds = _median(
                    lambda fresh=fresh, projection=projection: _run_query(
                        fresh, predicate, projection
                    )
                )
            row[version] = (cold_seconds, warm_seconds)

        # v3 without the read-ahead pool, for the prefetch A/B.
        def cold_noprefetch(projection=projection):
            with DiskRelation(paths[3], prefetch_workers=0) as fresh:
                return _run_query(fresh, predicate, projection)

        noprefetch_seconds = _median(cold_noprefetch)
        fraction = bytes_read[3][k] / max(bytes_read[2][k], 1)
        print(
            f"[column-pruning] {k:>2}/20 columns: "
            f"v2 {bytes_read[2][k]:>9,} B vs v3 {bytes_read[3][k]:>9,} B "
            f"({fraction:.1%}); cold v2 {row[2][0] * 1e3:.2f} ms, "
            f"v3 {row[3][0] * 1e3:.2f} ms "
            f"(no-prefetch {noprefetch_seconds * 1e3:.2f} ms), "
            f"warm v3 {row[3][1] * 1e3:.2f} ms"
        )

    # Acceptance: a 2-of-20-column selective query over v3 reads <= 25% of
    # the bytes the same query reads over v2, and bytes-read grows with the
    # projected-column count on v3 while v2 stays flat (whole blocks).
    assert bytes_read[3][2] <= V3_BYTES_BAR * bytes_read[2][2]
    assert bytes_read[3][2] < bytes_read[3][10] <= bytes_read[3][20]
    assert bytes_read[2][2] == bytes_read[2][20]
    # Projecting everything converges to (at most) the v2 behaviour.
    assert bytes_read[3][20] <= 1.1 * bytes_read[2][20]
