"""Benchmark for the zone-map scan pipeline: blocks pruned and latency vs.
selectivity.

Beyond the paper's figures: measures what per-block statistics buy a
selective ``Between`` scan over a sorted ``l_shipdate`` column, against the
seed's decode-every-block path (``use_statistics=False``).  The reporting
test records blocks pruned and asserts the headline speedup so future PRs
have a trajectory to compare against.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _bench_config import latency_rows
from repro.bench.experiments import _sorted_dates_relations
from repro.query import Between, QueryExecutor

SELECTIVITIES = (0.001, 0.01, 0.05, 0.1)
N_BLOCKS = 16


@pytest.fixture(scope="module")
def sorted_relation():
    """The sorted TPC-H date pair in 16 blocks, plus the raw sorted column."""
    relation, sorted_table = _sorted_dates_relations(
        latency_rows(), N_BLOCKS, seed=42
    )
    return relation, np.asarray(sorted_table.column("l_shipdate"))


def _predicate(ship: np.ndarray, selectivity: float) -> Between:
    cutoff = int(ship[min(int(selectivity * ship.size), ship.size - 1)])
    return Between("l_shipdate", int(ship[0]), cutoff)


class TestPrunedScan:
    @pytest.mark.parametrize("selectivity", SELECTIVITIES)
    def test_count_with_pruning(self, benchmark, sorted_relation, selectivity):
        relation, ship = sorted_relation
        executor = QueryExecutor(relation)
        predicate = _predicate(ship, selectivity)
        benchmark(executor.count, predicate)

    @pytest.mark.parametrize("selectivity", SELECTIVITIES)
    def test_count_full_decode(self, benchmark, sorted_relation, selectivity):
        relation, ship = sorted_relation
        executor = QueryExecutor(relation, use_statistics=False)
        predicate = _predicate(ship, selectivity)
        benchmark(executor.count, predicate)


def test_print_pruning_trajectory(sorted_relation):
    """Record blocks pruned / rows decoded / speedup per selectivity."""
    relation, ship = sorted_relation
    pruned_executor = QueryExecutor(relation)
    full_executor = QueryExecutor(relation, use_statistics=False)

    def _time(executor, predicate, repeats=5) -> float:
        executor.count(predicate)  # warm-up
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            executor.count(predicate)
            timings.append(time.perf_counter() - start)
        return float(np.median(timings))

    print()
    speedups = {}
    for selectivity in SELECTIVITIES:
        predicate = _predicate(ship, selectivity)
        pruned_seconds = _time(pruned_executor, predicate)
        metrics = pruned_executor.last_scan_metrics
        full_seconds = _time(full_executor, predicate)
        speedup = full_seconds / max(pruned_seconds, 1e-9)
        speedups[selectivity] = speedup
        print(
            f"[scan-pruning] selectivity {selectivity}: "
            f"{metrics.blocks_pruned + metrics.blocks_full}/{metrics.n_blocks} "
            f"blocks skipped, {metrics.rows_decoded:,} rows decoded, "
            f"{pruned_seconds * 1e3:.2f} ms vs {full_seconds * 1e3:.2f} ms "
            f"full-decode ({speedup:.1f}x)"
        )
        # Counts must agree with the brute-force path.
        assert pruned_executor.count(predicate) == full_executor.count(predicate)
    # Acceptance: >= 5x latency improvement at <= 10% selectivity on the
    # sorted column, where at most a couple of blocks overlap the range.
    assert max(speedups[s] for s in SELECTIVITIES if s <= 0.1) >= 5.0
