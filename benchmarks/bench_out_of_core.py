"""Benchmark for the out-of-core storage subsystem: bytes read and cache wins.

Measures what the ``.corra`` footer and the block cache buy a selective scan
over a sorted table served from disk:

* **metadata-only planning** — a cold selective query (``<= 10%``
  selectivity on the sorted key) fetches only the blocks that survive
  pruning; the reporting test asserts cold reads stay ``<= 20%`` of the
  table's block bytes and that the pruned blocks contribute exactly zero.
* **warm cache** — re-running the query against a warm
  :class:`~repro.storage.disk.DiskRelation` performs no I/O, no footer
  parse, and hits the planner's zone-map memo (the steady-state dashboard
  pattern); the reporting test asserts the warm median is ``>= 5x`` faster
  than the cold median (cold = fresh relation and fresh chain per run,
  cache empty).

The table mixes the sorted date pair with a dictionary-encoded tag column,
so block segments carry a string heap — a realistic deserialisation cost
for the cold path to pay and the warm path to skip.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _bench_config import ooc_rows
from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64, STRING
from repro.query import Between, Count, Sum
from repro.storage import DiskRelation, Table, write_table

SELECTIVITIES = (0.01, 0.05, 0.1)
N_BLOCKS = 16


def _sorted_table(n_rows: int, seed: int = 42) -> Table:
    rng = np.random.default_rng(seed)
    ship = np.sort(rng.integers(8_000, 8_000 + max(n_rows // 8, 64), n_rows))
    receipt = ship + rng.integers(1, 30, n_rows)
    # A few hundred distinct, moderately long tags: each segment then carries
    # a non-trivial string heap for the cold path to deserialise.
    tags = [f"tag_{i:04d}_{'x' * 16}" for i in range(256)]
    return Table.from_columns(
        [
            ("ship", INT64, ship),
            ("receipt", INT64, receipt),
            ("fare", INT64, rng.integers(100, 10_000, n_rows)),
            ("tag", STRING, [tags[i] for i in rng.integers(0, len(tags), n_rows)]),
        ]
    )


@pytest.fixture(scope="module")
def table_file(tmp_path_factory):
    """A sorted relation written as one .corra file, plus the raw key column."""
    n_rows = ooc_rows()
    table = _sorted_table(n_rows)
    plan = (
        CompressionPlan.builder(table.schema)
        .diff_encode("receipt", reference="ship")
        .build()
    )
    block_size = max(1, -(-n_rows // N_BLOCKS))
    relation = TableCompressor(plan, block_size=block_size).compress(table)
    path = tmp_path_factory.mktemp("ooc") / "sorted.corra"
    footer = write_table(path, relation)
    return path, footer, np.asarray(table.column("ship"))


def _predicate(ship: np.ndarray, selectivity: float) -> Between:
    cutoff = int(ship[min(int(selectivity * ship.size), ship.size - 1)])
    return Between("ship", int(ship[0]), cutoff)


def _run_query(relation: DiskRelation, predicate: Between):
    return (
        relation.query()
        .where(predicate)
        .agg(n=Count(), total=Sum("fare"))
        .execute()
    )


class TestOutOfCoreScan:
    @pytest.mark.parametrize("selectivity", SELECTIVITIES)
    def test_cold_query(self, benchmark, table_file, selectivity):
        path, _, ship = table_file
        predicate = _predicate(ship, selectivity)

        def cold():
            with DiskRelation(path) as relation:
                return _run_query(relation, predicate)

        benchmark(cold)

    @pytest.mark.parametrize("selectivity", SELECTIVITIES)
    def test_warm_query(self, benchmark, table_file, selectivity):
        path, _, ship = table_file
        predicate = _predicate(ship, selectivity)
        with DiskRelation(path) as relation:
            chain = relation.query().where(predicate).agg(n=Count(), total=Sum("fare"))
            chain.execute()  # fault the working set in, warm the planner memo
            benchmark(chain.execute)


def test_print_out_of_core_trajectory(table_file):
    """Record bytes read / speedup per selectivity; assert the acceptance bars."""
    path, footer, ship = table_file
    data_bytes = footer.data_bytes
    repeats = 5

    def _median(fn) -> float:
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return float(np.median(timings))

    print()
    read_fractions = {}
    speedups = {}
    for selectivity in SELECTIVITIES:
        predicate = _predicate(ship, selectivity)

        # Cold: fresh relation per run — empty cache, footer parse included.
        def cold():
            with DiskRelation(path) as relation:
                return _run_query(relation, predicate)

        cold_seconds = _median(cold)

        # I/O accounting of one cold run, on a fresh relation (read-ahead
        # off so every byte in the counters was demanded by the query).
        with DiskRelation(path, prefetch_workers=0) as relation:
            chain = relation.query().where(predicate).agg(n=Count(), total=Sum("fare"))
            result = chain.execute()
            bytes_read = relation.io.bytes_read
            loaded = [
                i
                for i in range(relation.n_blocks)
                if relation.is_column_cached(i, "ship")
            ]
            metrics = result.metrics
            # Pruned and fully-covered blocks must contribute zero bytes,
            # and the surviving scan blocks move column-granularly: only
            # the predicate/aggregate columns' sub-segments are fetched.
            assert relation.io.blocks_read == 0
            assert len(loaded) == metrics.blocks_scanned
            assert bytes_read == relation.io.column_bytes_read
            assert relation.io.column_block_bytes == sum(
                footer.blocks[i].length for i in loaded
            )
            assert bytes_read < relation.io.column_block_bytes

            # Warm: same relation and chain — the cache holds the working
            # set and the planner memo holds the zone-map decisions.
            warm_seconds = _median(chain.execute)

        read_fractions[selectivity] = bytes_read / data_bytes
        speedups[selectivity] = cold_seconds / max(warm_seconds, 1e-9)
        print(
            f"[out-of-core] selectivity {selectivity}: "
            f"{metrics.blocks_pruned} pruned + {metrics.blocks_full} full "
            f"of {metrics.n_blocks} blocks, "
            f"{bytes_read:,}/{data_bytes:,} bytes read "
            f"({read_fractions[selectivity]:.1%}), "
            f"cold {cold_seconds * 1e3:.2f} ms vs warm {warm_seconds * 1e3:.2f} ms "
            f"({speedups[selectivity]:.1f}x)"
        )

    # Acceptance: a cold selective query reads <= 20% of the block bytes at
    # <= 10% selectivity on sorted data, and the warm-cache rerun is >= 5x
    # faster than the cold run (no I/O, no footer parse, planner memo warm).
    # The 5x bar applies to the best selectivity (matching the other latency
    # benchmarks' tolerance for timer noise at sub-millisecond scale); the
    # 2x floor on every selectivity catches a genuinely broken warm path
    # (cache or planner-memo regressions run at ~1x).
    assert max(f for s, f in read_fractions.items() if s <= 0.1) <= 0.20
    assert max(sp for s, sp in speedups.items() if s <= 0.1) >= 5.0
    assert min(speedups.values()) >= 2.0
