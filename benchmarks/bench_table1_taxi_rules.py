"""Benchmark for Table 1: the arithmetic-rule mixture of Taxi ``total_amount``.

Times the rule-matching pass of the multi-reference encoder and checks that
the observed mixture reproduces the paper's probabilities (31.19 % / 62.44 % /
2.69 % / 3.33 % plus 0.32 % outliers) within sampling error.
"""

from __future__ import annotations

import pytest

from _bench_config import bench_rows
from repro.bench import rule_mixture_table1
from repro.core import MultiReferenceEncoding
from repro.datasets import taxi_multi_reference_config

PAPER_MIXTURE = {
    "A": 0.3119,
    "A + B": 0.6244,
    "A + C": 0.0269,
    "A + B + C": 0.0333,
}


def test_rule_matching_benchmark(benchmark, taxi_monetary):
    """Time the full rule-matching + outlier-extraction encode pass."""
    config = taxi_multi_reference_config()
    references = {
        name: taxi_monetary.column(name) for name in config.reference_columns
    }
    encoder = MultiReferenceEncoding(config)
    column = benchmark(encoder.encode, taxi_monetary.column("total_amount"), references)

    statistics = column.rule_statistics()
    observed = dict(zip(statistics.labels, statistics.probabilities))
    for label, probability in PAPER_MIXTURE.items():
        assert observed[label] == pytest.approx(probability, abs=0.02)
    assert statistics.outlier_probability == pytest.approx(0.0032, abs=0.002)
    assert statistics.codes == ["00", "01", "10", "11"]


def test_print_full_table1():
    """Regenerate and print the complete Table 1 (not a timed benchmark)."""
    result = rule_mixture_table1(n_rows=min(bench_rows(), 300_000))
    print()
    print(result.render())
    assert len(result.rows) == 5
