"""Benchmark for Table 3: Corra vs the independent C3 comparator.

Times C3's scheme-selection pass per column pair and checks the comparison's
shape: Corra and C3 land within a few percentage points of each other on the
pairs where the paper reports them to be on par.
"""

from __future__ import annotations

import pytest

from _bench_config import bench_rows
from repro.baselines import C3Selector, SingleColumnBaseline
from repro.bench import c3_comparison_table3
from repro.core import NonHierarchicalEncoding


def _rates(table, reference, target):
    baseline = SingleColumnBaseline().select_column(table, target).size_bytes
    corra = NonHierarchicalEncoding().encode(
        table.column(target), table.column(reference), reference
    ).size_bytes
    c3 = C3Selector().best(table, target, reference).size_bytes
    return 1 - corra / baseline, 1 - c3 / baseline


class TestTable3Pairs:
    def test_commitdate_pair(self, benchmark, tpch_dates):
        """(shipdate, commitdate): paper reports 33.3 % vs 31.5 %."""
        selector = C3Selector()
        best = benchmark(selector.best, tpch_dates, "l_commitdate", "l_shipdate")
        corra_rate, c3_rate = _rates(tpch_dates, "l_shipdate", "l_commitdate")
        assert corra_rate == pytest.approx(0.333, abs=0.02)
        assert c3_rate == pytest.approx(corra_rate, abs=0.05)
        assert best.scheme in {"DFOR", "Numerical"}

    def test_receiptdate_pair(self, benchmark, tpch_dates):
        """(shipdate, receiptdate): paper reports 58.3 % vs 56.1 %."""
        selector = C3Selector()
        benchmark(selector.best, tpch_dates, "l_receiptdate", "l_shipdate")
        corra_rate, c3_rate = _rates(tpch_dates, "l_shipdate", "l_receiptdate")
        assert corra_rate == pytest.approx(0.583, abs=0.02)
        assert c3_rate == pytest.approx(corra_rate, abs=0.05)

    def test_taxi_timestamp_pair(self, benchmark, taxi):
        """(pickup, dropoff): paper reports 30.6 % vs 52.9 %."""
        pair = taxi.select(["pickup", "dropoff"])
        selector = C3Selector()
        benchmark(selector.best, pair, "dropoff", "pickup")
        corra_rate, c3_rate = _rates(pair, "pickup", "dropoff")
        assert corra_rate > 0.2
        # Our affine-fit Numerical cannot recover the paper's 52.9 %, but C3
        # must never lose to Corra on this pair (it can always fall back to DFOR).
        assert c3_rate >= corra_rate - 0.01

    def test_dmv_city_zip_pair(self, benchmark, dmv):
        """(city, zip-code): paper reports 53.7 % vs 59.1 %."""
        selector = C3Selector()
        best = benchmark(selector.best, dmv, "zip_code", "city")
        baseline = SingleColumnBaseline().select_column(dmv, "zip_code").size_bytes
        c3_rate = 1 - best.size_bytes / baseline
        assert c3_rate > 0.25
        assert best.scheme in {"1-to-1", "Hierarchical"}


def test_print_full_table3():
    """Regenerate and print the complete Table 3 (not a timed benchmark)."""
    result = c3_comparison_table3(n_rows=min(bench_rows(), 300_000))
    print()
    print(result.render())
    assert len(result.rows) == 4
