"""Shared fixtures and configuration for the benchmark suite.

Every table and figure of the paper has one ``bench_*.py`` file here (see the
per-experiment index in DESIGN.md).  The row count is controlled by the
``CORRA_BENCH_ROWS`` environment variable (default 200,000) so the same
targets can be run at laptop scale or cranked up towards the paper's dataset
sizes; saving rates are row-count independent, latency results are reported
as ratios.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.baselines import SingleColumnBaseline, UncompressedBaseline
from repro.core import CompressionPlan, TableCompressor
from repro.datasets import (
    DmvGenerator,
    LdbcMessageGenerator,
    TaxiGenerator,
    TpchLineitemGenerator,
    taxi_multi_reference_config,
)

# Make the sibling _bench_config module importable regardless of how pytest
# was invoked (rootdir vs. benchmarks/ as the working directory).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_config import bench_rows, latency_rows, latency_vectors  # noqa: E402


@pytest.fixture(scope="session")
def n_rows() -> int:
    return bench_rows()


@pytest.fixture(scope="session")
def n_latency_rows() -> int:
    return latency_rows()


@pytest.fixture(scope="session")
def n_vectors() -> int:
    return latency_vectors()


# -- dataset fixtures (generated once per session) ------------------------------

@pytest.fixture(scope="session")
def tpch_dates(n_rows):
    return TpchLineitemGenerator().generate_dates_only(n_rows, seed=42)


@pytest.fixture(scope="session")
def taxi(n_rows):
    return TaxiGenerator().generate(n_rows, seed=42)


@pytest.fixture(scope="session")
def taxi_monetary(taxi):
    columns = list(taxi_multi_reference_config().reference_columns) + ["total_amount"]
    return taxi.select(columns)


@pytest.fixture(scope="session")
def dmv(n_rows):
    return DmvGenerator().generate_pair_only(n_rows, seed=42)


@pytest.fixture(scope="session")
def ldbc(n_rows):
    return LdbcMessageGenerator().generate_pair_only(n_rows, seed=42)


# -- relation fixtures for the latency figures -----------------------------------

@pytest.fixture(scope="session")
def tpch_latency_relations(n_latency_rows):
    """(baseline, corra, uncompressed) relations for the TPC-H date pair."""
    table = TpchLineitemGenerator().generate(n_latency_rows, seed=42).select(
        ["l_shipdate", "l_receiptdate"]
    )
    baseline = SingleColumnBaseline().compress(table)
    plan = (
        CompressionPlan.builder(table.schema)
        .diff_encode("l_receiptdate", reference="l_shipdate")
        .build()
    )
    corra = TableCompressor(plan).compress(table)
    uncompressed = UncompressedBaseline().compress(table)
    return baseline, corra, uncompressed


@pytest.fixture(scope="session")
def ldbc_latency_relations(n_latency_rows):
    """(baseline, corra, uncompressed) relations for the LDBC (countryid, ip) pair."""
    table = LdbcMessageGenerator().generate_pair_only(n_latency_rows, seed=42)
    baseline = SingleColumnBaseline().compress(table)
    plan = (
        CompressionPlan.builder(table.schema)
        .hierarchical_encode("ip", reference="countryid")
        .build()
    )
    corra = TableCompressor(plan).compress(table)
    uncompressed = UncompressedBaseline().compress(table)
    return baseline, corra, uncompressed


@pytest.fixture(scope="session")
def taxi_latency_relations(n_latency_rows):
    """(baseline, corra) relations for the Taxi monetary columns (Fig. 8)."""
    table = TaxiGenerator().generate_monetary_only(n_latency_rows, seed=42)
    baseline = SingleColumnBaseline().compress(table)
    plan = (
        CompressionPlan.builder(table.schema)
        .multi_reference_encode("total_amount", taxi_multi_reference_config())
        .build()
    )
    corra = TableCompressor(plan).compress(table)
    return baseline, corra
