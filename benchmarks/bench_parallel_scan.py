"""Benchmark for the morsel-driven parallel scan engine and the
dictionary-domain predicate path.

Two trajectories are recorded:

* **parallel scan** — ``count`` over an *unsorted* relation (zone maps
  cannot prune, every block must be evaluated) at increasing worker counts.
  The acceptance target is >= 2.5x throughput at 4 workers vs 1 on a
  1M-row relation (``CORRA_BENCH_PARALLEL_ROWS=1000000``); the assertion is
  gated on the machine actually having >= 4 cores, because a thread pool
  cannot beat serial execution on fewer cores than workers.
* **dictionary domain** — ``Eq``/``In`` over a dictionary-encoded string
  column with code-space evaluation on vs off.  The code-space path must
  materialise zero string-heap values (asserted via
  ``ScanMetrics.string_heap_decodes``) and beat decode-then-compare.

Row count comes from ``CORRA_BENCH_PARALLEL_ROWS`` (default 200,000 —
laptop scale, same convention as the other benchmarks); worker counts from
``CORRA_BENCH_PARALLEL_WORKERS`` (default ``1,2,4``), which the CI smoke
job narrows to ``1,2``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import TableCompressor
from repro.dtypes import INT64, STRING
from repro.query import Between, Eq, In, QueryExecutor
from repro.storage.table import Table

N_BLOCKS = 16


def parallel_rows() -> int:
    return int(os.environ.get("CORRA_BENCH_PARALLEL_ROWS", "200000"))


def worker_counts() -> tuple[int, ...]:
    spec = os.environ.get("CORRA_BENCH_PARALLEL_WORKERS", "1,2,4")
    return tuple(int(part) for part in spec.split(",") if part)


def _unsorted_table(n_rows: int, seed: int = 42) -> Table:
    """An unsorted mixed table: wide int column + dict-encoded string column."""
    rng = np.random.default_rng(seed)
    categories = [f"cat_{i:04d}" for i in range(256)]
    tags = [categories[i] for i in rng.integers(0, len(categories), n_rows)]
    return Table.from_columns([
        ("v", INT64, rng.integers(0, 1_000_000, n_rows)),
        ("tag", STRING, tags),
    ])


@pytest.fixture(scope="module")
def unsorted_relation():
    n_rows = parallel_rows()
    table = _unsorted_table(n_rows)
    block_size = max(1, -(-n_rows // N_BLOCKS))
    relation = TableCompressor(block_size=block_size).compress(table)
    return relation


def _time(fn, repeats: int = 3) -> float:
    fn()  # warm-up
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return float(np.median(timings))


class TestParallelScan:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_count_at_workers(self, benchmark, unsorted_relation, workers):
        executor = QueryExecutor(unsorted_relation, workers=workers)
        predicate = Between("v", 0, 100_000)
        benchmark(executor.count, predicate)


def test_print_parallel_scan_trajectory(unsorted_relation):
    """Record scan throughput per worker count on the unsorted relation."""
    relation = unsorted_relation
    predicate = Between("v", 0, 100_000)  # ~10% selectivity, zero pruning
    baseline = QueryExecutor(relation, workers=1)
    expected = baseline.count(predicate)
    assert baseline.last_scan_metrics.blocks_pruned == 0

    print()
    seconds_by_workers = {}
    for workers in worker_counts():
        executor = QueryExecutor(relation, workers=workers)
        assert executor.count(predicate) == expected
        seconds = _time(lambda: executor.count(predicate))
        seconds_by_workers[workers] = seconds
        throughput = relation.n_rows / seconds
        speedup = seconds_by_workers[min(seconds_by_workers)] / seconds
        print(
            f"[parallel-scan] workers={workers}: {seconds * 1e3:.2f} ms "
            f"({throughput / 1e6:.1f}M rows/s, {speedup:.2f}x vs "
            f"{min(seconds_by_workers)} worker(s))"
        )
    # Acceptance: >= 2.5x at 4 workers vs 1 — only meaningful when the
    # machine actually has >= 4 cores to spread the morsels over.
    cores = os.cpu_count() or 1
    if cores >= 4 and 4 in seconds_by_workers and 1 in seconds_by_workers:
        speedup = seconds_by_workers[1] / seconds_by_workers[4]
        assert speedup >= 2.5, (
            f"expected >= 2.5x at 4 workers on a {cores}-core machine, "
            f"got {speedup:.2f}x"
        )
    else:
        print(
            f"[parallel-scan] speedup assertion skipped "
            f"({cores} core(s) available)"
        )


def test_print_dictionary_domain_trajectory(unsorted_relation):
    """Record the dictionary-domain speedup over decode-then-compare."""
    relation = unsorted_relation
    assert relation.block(0).encoding_of("tag") == "dictionary"
    dict_executor = QueryExecutor(relation)
    decode_executor = QueryExecutor(relation, use_dictionary=False)

    print()
    for predicate in (
        Eq("tag", "cat_0042"),
        In("tag", ["cat_0001", "cat_0077", "cat_0200", "not_a_tag"]),
    ):
        expected = decode_executor.count(predicate)
        assert dict_executor.count(predicate) == expected
        dict_metrics = dict_executor.last_scan_metrics
        decode_metrics = decode_executor.last_scan_metrics
        # The code-space path must never materialise a string heap ...
        assert dict_metrics.string_heap_decodes == 0
        assert dict_metrics.rows_dict_evaluated == relation.n_rows
        # ... while decode-then-compare pays for every row.
        assert decode_metrics.string_heap_decodes == relation.n_rows
        assert decode_metrics.rows_dict_evaluated == 0

        dict_seconds = _time(lambda p=predicate: dict_executor.count(p))
        decode_seconds = _time(lambda p=predicate: decode_executor.count(p))
        speedup = decode_seconds / max(dict_seconds, 1e-9)
        print(
            f"[dict-domain] {predicate.describe()}: {dict_seconds * 1e3:.2f} ms "
            f"code-space vs {decode_seconds * 1e3:.2f} ms decode-then-compare "
            f"({speedup:.1f}x), 0 heap decodes"
        )
        assert speedup >= 2.0


def test_print_parallel_compression_trajectory():
    """Record block-compression wall time per worker count."""
    n_rows = min(parallel_rows(), 200_000)
    table = _unsorted_table(n_rows, seed=7)
    block_size = max(1, -(-n_rows // N_BLOCKS))
    reference = TableCompressor(block_size=block_size).compress(table)

    print()
    for workers in worker_counts():
        compressor = TableCompressor(block_size=block_size, workers=workers)
        seconds = _time(lambda: compressor.compress(table), repeats=1)
        relation = compressor.compress(table)
        assert relation.size_bytes == reference.size_bytes
        assert relation.n_blocks == reference.n_blocks
        print(
            f"[parallel-compress] workers={workers}: {seconds * 1e3:.0f} ms "
            f"for {relation.n_blocks} blocks"
        )
