"""Benchmark for the compressed-domain kernels (RLE run space, FOR word space).

Three trajectories are recorded, each against the same query with
``use_kernels=False`` (decode-then-compare):

* **RLE run space** — a compound predicate over a run-heavy, low-cardinality
  column.  The kernel evaluates once per run and fans out with
  ``np.repeat``; acceptance is **>= 5x** over the decode baseline with
  ``rows_decoded`` dropping to zero on the kernel path.
* **FOR word space** — a ``Between`` over a random 16-bit-domain column.
  Constants shift by the frame of reference and compare against a zero-copy
  lane view of the packed words; acceptance is **>= 2x** over decode.
* **run-weighted aggregates** — ``count``/``sum``/``min``/``max``/``avg``
  computed as Σ value·run_length over surviving runs; results are asserted
  *exactly* equal to the decode reference, and the workers sweep checks the
  parallel path returns the identical answers.

Row count comes from ``CORRA_BENCH_KERNEL_ROWS`` (default 200,000); worker
counts from ``CORRA_BENCH_KERNEL_WORKERS`` (default ``1,2``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64
from repro.query import Avg, Between, Count, Eq, Max, Min, Not, Or, Sum
from repro.storage.table import Table

N_BLOCKS = 16

#: Values cycle through the full 0..49 domain inside every block, so zone
#: maps can never prune — every block must be answered by the kernel (or
#: decoded by the baseline).
N_DISTINCT = 50
RUN_LENGTH = 64


def kernel_rows() -> int:
    return int(os.environ.get("CORRA_BENCH_KERNEL_ROWS", "200000"))


def worker_counts() -> tuple[int, ...]:
    spec = os.environ.get("CORRA_BENCH_KERNEL_WORKERS", "1,2")
    return tuple(int(part) for part in spec.split(",") if part)


def _kernel_table(n_rows: int, seed: int = 42) -> Table:
    rng = np.random.default_rng(seed)
    n_runs = -(-n_rows // RUN_LENGTH)
    rle = np.repeat(np.arange(n_runs, dtype=np.int64) % N_DISTINCT, RUN_LENGTH)[:n_rows]
    return Table.from_columns([
        ("grade", INT64, rle),
        ("word", INT64, rng.integers(0, 65_536, n_rows)),
    ])


@pytest.fixture(scope="module")
def kernel_relation():
    n_rows = kernel_rows()
    table = _kernel_table(n_rows)
    plan = (
        CompressionPlan.builder(table.schema)
        .vertical("grade", "rle")
        .vertical("word", "for_bitpack")
        .build()
    )
    block_size = max(1, -(-n_rows // N_BLOCKS))
    return TableCompressor(plan, block_size=block_size).compress(table), table


def _time(fn, repeats: int = 5) -> float:
    fn()  # warm-up
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return float(np.median(timings))


class TestKernelLatency:
    @pytest.mark.parametrize("use_kernels", (True, False))
    def test_rle_compound_predicate(self, benchmark, kernel_relation, use_kernels):
        relation, _ = kernel_relation
        query = (
            relation.query(use_kernels=use_kernels)
            .where(Or(Eq("grade", 7), Not(Between("grade", 3, 40))))
            .agg(n=Count())
        )
        benchmark(query.execute)


def test_print_rle_run_space_trajectory(kernel_relation):
    """Record run-space evaluation vs decode-then-compare on RLE data."""
    relation, table = kernel_relation
    assert relation.block(0).encoding_of("grade") == "rle"
    grade = table.column("grade")
    predicate = Or(Eq("grade", 7), Not(Between("grade", 3, 40)))
    expected_mask = (grade == 7) | ~((grade >= 3) & (grade <= 40))
    expected = int(np.count_nonzero(expected_mask))

    kernel_query = relation.query().where(predicate).agg(n=Count())
    decode_query = relation.query(use_kernels=False).where(predicate).agg(n=Count())
    kernel_result = kernel_query.execute()
    decode_result = decode_query.execute()
    assert kernel_result.scalar("n") == expected
    assert decode_result.scalar("n") == expected

    # The kernel path never decodes a row: it touches only the run arrays.
    assert kernel_result.metrics.rows_decoded == 0
    assert kernel_result.metrics.rows_rle_evaluated == relation.n_rows
    assert kernel_result.metrics.runs_evaluated < relation.n_rows // (RUN_LENGTH // 2)
    assert decode_result.metrics.rows_decoded == relation.n_rows
    assert decode_result.metrics.rows_rle_evaluated == 0

    kernel_seconds = _time(lambda: kernel_query.execute())
    decode_seconds = _time(lambda: decode_query.execute())
    speedup = decode_seconds / max(kernel_seconds, 1e-9)
    print()
    print(
        f"[rle-kernel] {relation.n_rows:,} rows in "
        f"{kernel_result.metrics.runs_evaluated:,} runs: "
        f"{kernel_seconds * 1e3:7.2f} ms run-space vs "
        f"{decode_seconds * 1e3:7.2f} ms decode ({speedup:5.1f}x), "
        f"0 vs {decode_result.metrics.rows_decoded:,} rows decoded"
    )
    assert speedup >= 5.0, f"expected >= 5x for RLE run-space evaluation, got {speedup:.1f}x"


def test_print_for_word_space_trajectory(kernel_relation):
    """Record word-space Between vs decode-then-compare on FOR data."""
    relation, table = kernel_relation
    assert relation.block(0).encoding_of("word") == "for_bitpack"
    word = table.column("word")
    predicate = Between("word", 10_000, 20_000)
    expected = int(np.count_nonzero((word >= 10_000) & (word <= 20_000)))

    kernel_query = relation.query().where(predicate).agg(n=Count())
    decode_query = relation.query(use_kernels=False).where(predicate).agg(n=Count())
    kernel_result = kernel_query.execute()
    decode_result = decode_query.execute()
    assert kernel_result.scalar("n") == expected
    assert decode_result.scalar("n") == expected
    assert kernel_result.metrics.rows_decoded == 0
    assert kernel_result.metrics.rows_for_evaluated == relation.n_rows
    assert decode_result.metrics.rows_decoded == relation.n_rows

    kernel_seconds = _time(lambda: kernel_query.execute())
    decode_seconds = _time(lambda: decode_query.execute())
    speedup = decode_seconds / max(kernel_seconds, 1e-9)
    print()
    print(
        f"[for-kernel] {relation.n_rows:,} rows: "
        f"{kernel_seconds * 1e3:7.2f} ms word-space vs "
        f"{decode_seconds * 1e3:7.2f} ms decode ({speedup:5.1f}x), "
        f"0 vs {decode_result.metrics.rows_decoded:,} rows decoded"
    )
    assert speedup >= 2.0, f"expected >= 2x for FOR word-space Between, got {speedup:.1f}x"


def test_print_run_weighted_aggregate_trajectory(kernel_relation):
    """Run-weighted aggregates must exactly equal the decode reference."""
    relation, table = kernel_relation
    grade = table.column("grade")
    predicate = Between("grade", 5, 30)
    mask = (grade >= 5) & (grade <= 30)
    selected = grade[mask]
    expected = {
        "n": int(selected.size),
        "s": int(np.sum(selected, dtype=np.int64)),
        "lo": int(selected.min()),
        "hi": int(selected.max()),
        "a": float(np.sum(selected, dtype=np.int64)) / selected.size,
    }

    aggs = dict(n=Count(), s=Sum("grade"), lo=Min("grade"), hi=Max("grade"), a=Avg("grade"))
    kernel_query = relation.query().where(predicate).agg(**aggs)
    decode_query = relation.query(use_kernels=False).where(predicate).agg(**aggs)
    kernel_result = kernel_query.execute()
    decode_result = decode_query.execute()
    for name, value in expected.items():
        assert kernel_result.scalar(name) == value
        assert decode_result.scalar(name) == value
    assert kernel_result.metrics.rows_kernel_aggregated > 0
    assert decode_result.metrics.rows_kernel_aggregated == 0

    print()
    for workers in worker_counts():
        query = relation.query(workers=workers).where(predicate).agg(**aggs)
        result = query.execute()
        for name, value in expected.items():
            assert result.scalar(name) == value
        seconds = _time(lambda: query.execute())
        print(
            f"[kernel-agg] workers={workers}: {seconds * 1e3:7.2f} ms run-weighted "
            f"({relation.n_rows / seconds / 1e6:.1f}M rows/s, exact match)"
        )
