"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not figures from the paper; they quantify the alternatives the
paper discusses and rejects (or leaves implicit):

* outlier region vs. widening the code (the §2.3 sentinel discussion);
* raw/zig-zag difference packing vs. FOR over the differences (DFOR);
* block-size sensitivity of the hierarchical metadata overhead;
* greedy configuration search vs. exhaustive enumeration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CompressionPlan,
    DiffEncodedColumn,
    DiffEncodingOptimizer,
    NonHierarchicalEncoding,
    TableCompressor,
    optimal_configuration_exhaustive,
)


class TestOutlierRegionAblation:
    """Outlier region (paper design) vs. one wide code stream."""

    @pytest.fixture(scope="class")
    def wild_pair(self):
        rng = np.random.default_rng(77)
        n = 200_000
        reference = rng.integers(0, 1 << 20, size=n, dtype=np.int64)
        target = reference + rng.integers(0, 64, size=n, dtype=np.int64)
        wild = rng.choice(n, size=n // 500, replace=False)  # 0.2 % wild rows
        target[wild] += 1 << 34
        return target, reference

    def test_with_outlier_region(self, benchmark, wild_pair):
        target, reference = wild_pair
        column = benchmark(
            DiffEncodedColumn, target, reference, "ref", 6
        )
        assert column.bit_width <= 6

    def test_without_outlier_region(self, benchmark, wild_pair):
        target, reference = wild_pair
        column = benchmark(DiffEncodedColumn, target, reference, "ref", None)
        assert column.bit_width > 30

    def test_outlier_region_is_smaller(self, wild_pair):
        target, reference = wild_pair
        with_region = DiffEncodedColumn(target, reference, "ref", outlier_bit_budget=6)
        without = DiffEncodedColumn(target, reference, "ref")
        assert with_region.size_bytes < 0.5 * without.size_bytes
        # And it stays lossless.
        assert np.array_equal(
            with_region.decode_with_reference({"ref": reference}), target
        )


class TestFrameAblation:
    """Raw/zig-zag packing (paper layout) vs. FOR over the differences (DFOR)."""

    def test_raw_packing(self, benchmark, tpch_dates):
        encoder = NonHierarchicalEncoding(use_frame=False)
        column = benchmark(
            encoder.encode,
            tpch_dates.column("l_commitdate"),
            tpch_dates.column("l_receiptdate"),
            "l_receiptdate",
        )
        assert column.uses_zigzag  # commit - receipt has both signs

    def test_framed_packing(self, benchmark, tpch_dates):
        encoder = NonHierarchicalEncoding(use_frame=True)
        column = benchmark(
            encoder.encode,
            tpch_dates.column("l_commitdate"),
            tpch_dates.column("l_receiptdate"),
            "l_receiptdate",
        )
        assert column.uses_frame

    def test_frame_never_larger(self, tpch_dates):
        for target, reference in (
            ("l_commitdate", "l_shipdate"),
            ("l_shipdate", "l_receiptdate"),
            ("l_commitdate", "l_receiptdate"),
        ):
            framed = NonHierarchicalEncoding(use_frame=True).encode(
                tpch_dates.column(target), tpch_dates.column(reference), reference
            )
            raw = NonHierarchicalEncoding(use_frame=False).encode(
                tpch_dates.column(target), tpch_dates.column(reference), reference
            )
            assert framed.size_bytes <= raw.size_bytes


class TestBlockSizeAblation:
    """Hierarchical metadata is per block; smaller blocks repeat it more often."""

    @pytest.mark.parametrize("block_size", [25_000, 100_000, 1_000_000])
    def test_block_size_compression(self, benchmark, dmv, block_size):
        plan = (
            CompressionPlan.builder(dmv.schema)
            .hierarchical_encode("zip_code", reference="city")
            .build()
        )
        compressor = TableCompressor(plan, block_size=block_size)
        relation = benchmark(compressor.compress, dmv)
        assert relation.n_rows == dmv.n_rows

    def test_larger_blocks_compress_better(self, dmv):
        plan = (
            CompressionPlan.builder(dmv.schema)
            .hierarchical_encode("zip_code", reference="city")
            .build()
        )
        small = TableCompressor(plan, block_size=25_000).compress(dmv)
        large = TableCompressor(plan, block_size=1_000_000).compress(dmv)
        assert large.column_size("zip_code") <= small.column_size("zip_code")


class TestOptimizerAblation:
    """Greedy selection vs. exhaustive enumeration (validated equal in tests)."""

    def test_greedy(self, benchmark, tpch_dates):
        optimizer = DiffEncodingOptimizer()
        graph = optimizer.build_graph(tpch_dates)
        benchmark(optimizer.optimize_graph, graph)

    def test_exhaustive(self, benchmark, tpch_dates):
        optimizer = DiffEncodingOptimizer()
        graph = optimizer.build_graph(tpch_dates)
        benchmark(optimal_configuration_exhaustive, graph)
