"""Benchmark for ``corra serve``: one shared Engine vs a cold engine per request.

The service's whole pitch is amortisation: every request through the shared
engine reuses one planner memo, one block cache, one worker pool and one
result cache, where the naive pattern (open the table, build an engine,
run, throw it away) pays footer parses, zone-map planning and block I/O on
every single request.

The load generator drives both deployments over real HTTP with
``CORRA_BENCH_SERVER_CLIENTS`` concurrent clients (default 8) issuing a
mixed read workload against a compressed catalog table of
``CORRA_BENCH_SERVER_ROWS`` rows (default <= 100,000):

* **warm** — the default service: ``reuse_engine=True``, admission gate and
  result cache on.
* **cold** — the benchmark baseline: ``reuse_engine=False`` builds a fresh
  :class:`~repro.query.engine.Engine` per request; no admission, no result
  cache, nothing shared.

The reporting test asserts that every HTTP response — warm and cold — is
bit-identical to the same plan executed serially through the library, and
that the warm p50 beats the cold p50 by >= 3x.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest

from _bench_config import server_clients, server_rows
from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64, STRING
from repro.query import Avg, Between, Count, Eq, In, Max, Sum
from repro.server import BackgroundServer, QueryService, ServiceConfig, encode_result
from repro.storage import Catalog, Table

N_BLOCKS = 16
TAGS = [f"tag_{i:03d}" for i in range(64)]


def _build_table(n_rows: int, seed: int = 7) -> Table:
    rng = np.random.default_rng(seed)
    ship = np.sort(rng.integers(8_000, 8_000 + max(n_rows // 8, 64), n_rows))
    return Table.from_columns(
        [
            ("ship", INT64, ship),
            ("fare", INT64, rng.integers(100, 10_000, n_rows)),
            ("tip", INT64, rng.integers(0, 2_000, n_rows)),
            ("tag", STRING, [TAGS[i] for i in rng.integers(0, len(TAGS), n_rows)]),
        ]
    )


def _workload(ship: np.ndarray) -> list[dict]:
    """A small pool of distinct queries the clients cycle through."""
    lo = int(ship[0])
    mid = int(ship[ship.size // 2])
    hi = int(ship[-1])
    return [
        {
            "table": "trips",
            "where": {"op": "between", "column": "ship", "lo": lo, "hi": mid},
            "aggregates": {"n": {"fn": "count"}, "total": {"fn": "sum", "column": "fare"}},
        },
        {
            "table": "trips",
            "where": {"op": "eq", "column": "tag", "value": TAGS[3]},
            "aggregates": {"n": {"fn": "count"}, "mean": {"fn": "avg", "column": "tip"}},
        },
        {
            "table": "trips",
            "where": {"op": "between", "column": "ship", "lo": mid, "hi": hi},
            "group_by": ["tag"],
            "aggregates": {"n": {"fn": "count"}, "hi": {"fn": "max", "column": "fare"}},
        },
        {
            "table": "trips",
            "where": {"op": "in", "column": "tag", "values": [TAGS[0], TAGS[1]]},
            "select": ["ship", "tag"],
            "limit": 50,
        },
        {
            "table": "trips",
            "aggregates": {"n": {"fn": "count"}, "total": {"fn": "sum", "column": "tip"}},
        },
    ]


def _serial_reference(relation, ship: np.ndarray) -> list[dict]:
    """Each workload entry executed serially through the library path."""
    lo = int(ship[0])
    mid = int(ship[ship.size // 2])
    hi = int(ship[-1])
    queries = [
        relation.query().where(Between("ship", lo, mid)).agg(n=Count(), total=Sum("fare")),
        relation.query().where(Eq("tag", TAGS[3])).agg(n=Count(), mean=Avg("tip")),
        relation.query()
        .where(Between("ship", mid, hi))
        .group_by("tag")
        .agg(n=Count(), hi=Max("fare")),
        relation.query().where(In("tag", [TAGS[0], TAGS[1]])).select("ship", "tag").limit(50),
        relation.query().agg(n=Count(), total=Sum("tip")),
    ]
    # Encode exactly as the server does, then round-trip through JSON so the
    # comparison is against what a client actually decodes off the wire.
    return [
        json.loads(json.dumps(encode_result(query.execute())))["columns"]
        for query in queries
    ]


@pytest.fixture(scope="module")
def catalog_dir(tmp_path_factory):
    n_rows = server_rows()
    table = _build_table(n_rows)
    plan = CompressionPlan.vertical_only(table.schema)
    block_size = max(1, -(-n_rows // N_BLOCKS))
    relation = TableCompressor(plan, block_size=block_size).compress(table)
    root = tmp_path_factory.mktemp("serve") / "cat"
    Catalog(root).save("trips", relation)
    return root, relation, np.asarray(table.column("ship"))


def _post(host: str, port: int, payload: dict) -> dict:
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request(
            "POST",
            "/query",
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        body = json.loads(response.read())
        if response.status != 200:
            raise RuntimeError(f"query failed ({response.status}): {body}")
        return body
    finally:
        conn.close()


def _drive(host: str, port: int, workload: list[dict], n_clients: int, rounds: int):
    """``n_clients`` threads, each cycling the workload; per-request latency."""
    latencies: list[float] = []
    responses: list[tuple[int, dict]] = []
    errors: list[Exception] = []
    lock = threading.Lock()

    def client(client_id: int):
        try:
            for round_no in range(rounds):
                which = (client_id + round_no) % len(workload)
                start = time.perf_counter()
                body = _post(host, port, workload[which])
                elapsed = time.perf_counter() - start
                with lock:
                    latencies.append(elapsed)
                    responses.append((which, body))
        except Exception as exc:  # pragma: no cover - failure path
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    if errors:
        raise errors[0]
    return latencies, responses


def test_print_server_trajectory(catalog_dir):
    """Drive warm vs cold over HTTP; assert identity and the 3x p50 bar."""
    root, relation, ship = catalog_dir
    workload = _workload(ship)
    reference = _serial_reference(relation, ship)
    n_clients = server_clients()
    rounds = 6

    def run(label: str, config: ServiceConfig):
        with QueryService(root, config=config) as service:
            with BackgroundServer(service, port=0) as (host, port):
                # One untimed pass primes the pools and caches (for the cold
                # baseline it merely warms the OS page cache, which both
                # deployments get to enjoy).
                for payload in workload:
                    _post(host, port, payload)
                latencies, responses = _drive(host, port, workload, n_clients, rounds)
            metrics = service.snapshot_metrics()
        for which, body in responses:
            assert body["columns"] == reference[which], f"{label} diverged on plan {which}"
        p50, p99 = np.percentile(latencies, [50, 99])
        return float(p50), float(p99), metrics

    shared = ServiceConfig(max_concurrency=n_clients, queue_depth=4 * n_clients)
    per_request = ServiceConfig(
        max_concurrency=n_clients, queue_depth=4 * n_clients, reuse_engine=False
    )
    warm_p50, warm_p99, warm_metrics = run("warm", shared)
    cold_p50, cold_p99, _ = run("cold", per_request)

    speedup = cold_p50 / max(warm_p50, 1e-9)
    print()
    print(
        f"[serve] {n_clients} clients x {rounds} rounds over {len(workload)} plans: "
        f"warm p50 {warm_p50 * 1e3:.2f} ms / p99 {warm_p99 * 1e3:.2f} ms, "
        f"cold p50 {cold_p50 * 1e3:.2f} ms / p99 {cold_p99 * 1e3:.2f} ms "
        f"({speedup:.1f}x), "
        f"result-cache hit rate {warm_metrics['result_cache']['hit_rate']:.2f}"
    )

    # Acceptance: every response (warm and cold) was bit-identical to the
    # serial library path above, the shared engine actually served from its
    # result cache, and its p50 beats the cold per-request baseline >= 3x.
    assert warm_metrics["queries_ok"] == warm_metrics["queries_total"]
    assert warm_metrics["result_cache"]["hits"] > 0
    assert speedup >= 3.0
