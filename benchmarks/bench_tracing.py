"""Benchmark for the tracing subsystem: disabled overhead and enabled parity.

Two claims are enforced:

* **Disabled tracing is (nearly) free.**  Every instrumented site costs one
  thread-local read plus a no-op ``with`` on the shared null span.  The
  bound is computed from first principles rather than from two noisy
  wall-clock runs: the per-site cost is microbenchmarked directly, scaled
  by the number of spans the traced run actually opened for this query,
  and that projected overhead must stay **under 3%** of the untraced query
  time.  An informational A/B of the same query with tracing off vs on is
  printed alongside.
* **Tracing is observation only.**  The traced run's results are asserted
  bit-identical to the untraced run, serial and parallel.

Row count comes from ``CORRA_BENCH_TRACE_ROWS`` (default 200,000).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64
from repro.query import Between, Count, EngineConfig, Sum
from repro.query.tracing import Tracer, current_tracer
from repro.storage.table import Table

N_BLOCKS = 16
N_DISTINCT = 50
RUN_LENGTH = 64

#: Projected disabled-tracing overhead must stay under this fraction of
#: the untraced query time.
MAX_DISABLED_OVERHEAD = 0.03


def trace_rows() -> int:
    return int(os.environ.get("CORRA_BENCH_TRACE_ROWS", "200000"))


def _trace_table(n_rows: int, seed: int = 42) -> Table:
    rng = np.random.default_rng(seed)
    n_runs = -(-n_rows // RUN_LENGTH)
    rle = np.repeat(np.arange(n_runs, dtype=np.int64) % N_DISTINCT, RUN_LENGTH)[:n_rows]
    return Table.from_columns([
        ("grade", INT64, rle),
        ("word", INT64, rng.integers(0, 65_536, n_rows)),
    ])


@pytest.fixture(scope="module")
def trace_relation():
    n_rows = trace_rows()
    table = _trace_table(n_rows)
    plan = (
        CompressionPlan.builder(table.schema)
        .vertical("grade", "rle")
        .vertical("word", "for_bitpack")
        .build()
    )
    block_size = max(1, -(-n_rows // N_BLOCKS))
    return TableCompressor(plan, block_size=block_size).compress(table)


def _time(fn, repeats: int = 5) -> float:
    fn()  # warm-up
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return float(np.median(timings))


def _query(relation, workers: int = 1):
    return (
        relation.query(config=EngineConfig(workers=workers))
        .where(Between("grade", 5, 30))
        .agg(n=Count(), s=Sum("word"))
    )


def _null_span_cost(iterations: int = 200_000) -> float:
    """Seconds per disabled instrumented site (thread-local read + no-op with)."""
    tracer = current_tracer()
    assert not tracer.enabled

    def loop() -> None:
        for _ in range(iterations):
            with current_tracer().span("x"):
                pass

    return _time(loop, repeats=3) / iterations


def test_disabled_overhead_under_bound(trace_relation):
    """Projected cost of the disabled instrumentation stays under 3%."""
    query = _query(trace_relation)
    untraced_seconds = _time(query.execute)

    # How many spans does this query actually open when traced?  That is
    # exactly how many times the disabled path pays the null-span cost.
    tracer = Tracer()
    query.execute(tracer=tracer)
    n_spans = len(tracer.spans())
    assert n_spans > 0

    per_site = _null_span_cost()
    projected = per_site * n_spans
    overhead = projected / untraced_seconds

    traced_seconds = _time(lambda: query.execute(tracer=Tracer()))
    print()
    print(
        f"[tracing-off] {untraced_seconds * 1e3:7.2f} ms untraced; "
        f"{n_spans} spans x {per_site * 1e9:5.0f} ns null-span = "
        f"{projected * 1e6:6.1f} us projected ({overhead:.3%} overhead)"
    )
    print(
        f"[tracing-on ] {traced_seconds * 1e3:7.2f} ms traced "
        f"({traced_seconds / untraced_seconds:5.2f}x of untraced, informational)"
    )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled tracing projects to {overhead:.2%} of query time "
        f"(bound {MAX_DISABLED_OVERHEAD:.0%})"
    )


@pytest.mark.parametrize("workers", (1, 2))
def test_traced_results_bit_identical(trace_relation, workers):
    """Enabling tracing must not change a single output value."""
    query = _query(trace_relation, workers=workers)
    untraced = query.execute()
    traced = query.execute(tracer=Tracer())
    assert traced.n_rows == untraced.n_rows
    assert set(traced.columns) == set(untraced.columns)
    for name in traced.columns:
        assert np.array_equal(
            np.asarray(traced.columns[name]), np.asarray(untraced.columns[name])
        )
    # The traced run recorded a real span tree while matching bit for bit.
    assert untraced.scalar("n") == traced.scalar("n")
    assert untraced.scalar("s") == traced.scalar("s")
