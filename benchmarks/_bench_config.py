"""Benchmark-suite configuration shared by the bench_* modules.

Kept separate from ``conftest.py`` (which only defines pytest fixtures) so
benchmark modules can import plain helpers without relying on conftest being
importable as a module.
"""

from __future__ import annotations

import os

__all__ = [
    "bench_rows",
    "latency_rows",
    "latency_vectors",
    "ooc_rows",
    "server_clients",
    "server_rows",
]


def bench_rows() -> int:
    """Row count per dataset for the compression benchmarks."""
    return int(os.environ.get("CORRA_BENCH_ROWS", "200000"))


def latency_rows() -> int:
    """Row count for the latency benchmarks (at most one data block)."""
    return int(
        os.environ.get("CORRA_BENCH_LATENCY_ROWS", str(min(bench_rows(), 200_000)))
    )


def latency_vectors() -> int:
    """Selection vectors per selectivity (the paper uses 10)."""
    return int(os.environ.get("CORRA_BENCH_VECTORS", "5"))


def ooc_rows() -> int:
    """Row count for the out-of-core benchmarks."""
    return int(
        os.environ.get("CORRA_BENCH_OOC_ROWS", str(min(bench_rows(), 200_000)))
    )


def server_rows() -> int:
    """Row count for the query-service benchmark's fixture table."""
    return int(
        os.environ.get("CORRA_BENCH_SERVER_ROWS", str(min(bench_rows(), 100_000)))
    )


def server_clients() -> int:
    """Concurrent clients for the query-service benchmark."""
    return int(os.environ.get("CORRA_BENCH_SERVER_CLIENTS", "8"))
