"""Benchmark for Figure 2: the optimal diff-encoding configuration search.

Times (a) building the candidate graph (one size estimate per ordered column
pair) and (b) the greedy selection itself, and checks that the chosen
configuration matches the paper: ``l_shipdate`` is the reference for both
other date columns, and the total saving scales to 82.5 MB at SF 10.
"""

from __future__ import annotations

import pytest

from _bench_config import bench_rows
from repro.bench import optimizer_figure2
from repro.core import DiffEncodingOptimizer, optimal_configuration_exhaustive
from repro.datasets import TpchLineitemGenerator


class TestFigure2:
    def test_graph_construction(self, benchmark, tpch_dates):
        """Time the pairwise size-estimate graph of Fig. 2."""
        optimizer = DiffEncodingOptimizer()
        graph = benchmark(optimizer.build_graph, tpch_dates)
        assert len(graph.edge_sizes) == 6

    def test_greedy_selection(self, benchmark, tpch_dates):
        """Time the greedy assignment; it must match the paper's configuration."""
        optimizer = DiffEncodingOptimizer()
        graph = optimizer.build_graph(tpch_dates)
        config = benchmark(optimizer.optimize_graph, graph)
        assert config.assignments == {
            "l_commitdate": "l_shipdate",
            "l_receiptdate": "l_shipdate",
        }

    def test_greedy_matches_exhaustive(self, benchmark, tpch_dates):
        """The greedy result must equal the exhaustive optimum on this workload."""
        optimizer = DiffEncodingOptimizer()
        graph = optimizer.build_graph(tpch_dates)
        exhaustive = benchmark(optimal_configuration_exhaustive, graph)
        greedy = optimizer.optimize_graph(graph)
        assert greedy.total_size == exhaustive.total_size

    def test_saving_scales_to_paper(self, tpch_dates, n_rows):
        generator = TpchLineitemGenerator()
        _, config = DiffEncodingOptimizer().optimize(tpch_dates)
        scaled_mb = config.total_saving * (generator.paper_rows / n_rows) / 1e6
        assert scaled_mb == pytest.approx(82.5, rel=0.03)


def test_print_full_figure2():
    """Regenerate and print the Fig. 2 graph and chosen configuration."""
    result = optimizer_figure2(n_rows=min(bench_rows(), 300_000))
    print()
    print(result.render())
    assert result.metrics["total_saving_scaled_mb"] == pytest.approx(82.5, rel=0.05)
