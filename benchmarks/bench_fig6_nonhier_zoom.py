"""Benchmark for Figure 6: absolute latency zoom-in, non-hierarchical encoding.

Three configurations (uncompressed, single-column compression, Corra) at the
paper's four zoom selectivities {0.005, 0.01, 0.05, 0.1}, for the
diff-encoded column alone and for both columns.
"""

from __future__ import annotations

import pytest

from _bench_config import latency_vectors
from repro.query import (
    PAPER_ZOOM_SELECTIVITIES,
    generate_selection_vectors,
    materialize_columns,
    sweep_query_latency,
)

CONFIGURATIONS = ("uncompressed", "single_column", "corra")


def _relation(relations, configuration):
    baseline, corra, uncompressed = relations
    return {
        "uncompressed": uncompressed,
        "single_column": baseline,
        "corra": corra,
    }[configuration]


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@pytest.mark.parametrize("selectivity", [0.005, 0.1])
def test_diff_encoded_column(benchmark, tpch_latency_relations, configuration, selectivity):
    relation = _relation(tpch_latency_relations, configuration)
    vector = generate_selection_vectors(relation.n_rows, selectivity, 1, seed=23)[0]
    benchmark(materialize_columns, relation, ["l_receiptdate"], vector)


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@pytest.mark.parametrize("selectivity", [0.005, 0.1])
def test_both_columns(benchmark, tpch_latency_relations, configuration, selectivity):
    relation = _relation(tpch_latency_relations, configuration)
    vector = generate_selection_vectors(relation.n_rows, selectivity, 1, seed=23)[0]
    benchmark(
        materialize_columns, relation, ["l_shipdate", "l_receiptdate"], vector
    )


def test_print_figure6(tpch_latency_relations):
    """Print the absolute-latency bars of Fig. 6 for all three configurations."""
    baseline, corra, uncompressed = tpch_latency_relations
    n_vectors = latency_vectors()
    print()
    for query_label, columns in (
        ("diff-enc. column", ["l_receiptdate"]),
        ("both columns", ["l_shipdate", "l_receiptdate"]),
    ):
        for config_label, relation in (
            ("Uncompressed", uncompressed),
            ("Single-column compression", baseline),
            ("Non-hierarchical encoding (ours)", corra),
        ):
            sweep = sweep_query_latency(
                relation, columns, PAPER_ZOOM_SELECTIVITIES, n_vectors
            )
            rendered = ", ".join(
                f"{s}:{sweep.measurement(s).mean_milliseconds():.2f}ms"
                for s in sweep.selectivities
            )
            print(f"[figure6] {query_label} / {config_label}: {rendered}")
    assert True
