"""Benchmarks for zone-map-driven top-k and the work-stealing scheduler.

Two trajectories are recorded, both checked bit-identical against a serial
sort-everything reference:

* **top-k early exit** — ``order_by(col).limit(k)`` over a *clustered*
  column (sorted at generation time, so per-block zone maps are disjoint)
  on a cold out-of-core table.  The engine visits blocks in bound order and
  stops once no remaining block can beat the k-th candidate; the acceptance
  target is that at most 25% of the surviving blocks are ever fetched.
* **work stealing** — a skewed workload (one worker's contiguous share of
  the deal carries nearly all the compute) at 4 workers, stealing on vs
  off.  The acceptance target is >= 1.5x, gated on the machine actually
  having >= 4 cores.

Row count comes from ``CORRA_BENCH_TOPK_ROWS`` (default 200,000 — laptop
scale, same convention as the other benchmarks); the steal benchmark's
worker count from ``CORRA_BENCH_TOPK_WORKERS`` (default 4).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import TableCompressor
from repro.dtypes import INT64
from repro.query import ColumnPredicate, EngineConfig, ParallelEngine
from repro.storage import DiskRelation, Table, write_table

N_BLOCKS = 64
TOP_K = 32


def topk_rows() -> int:
    return int(os.environ.get("CORRA_BENCH_TOPK_ROWS", "200000"))


def steal_workers() -> int:
    return int(os.environ.get("CORRA_BENCH_TOPK_WORKERS", "4"))


def _clustered_relation(n_rows: int, seed: int = 42):
    """A relation whose sort column is clustered: disjoint zone maps."""
    rng = np.random.default_rng(seed)
    table = Table.from_columns([
        ("ts", INT64, np.sort(rng.integers(0, 10 * n_rows, n_rows))),
        ("payload", INT64, rng.integers(0, 1_000, n_rows)),
    ])
    block_size = max(1, -(-n_rows // N_BLOCKS))
    return table, TableCompressor(block_size=block_size).compress(table)


def _time(fn, repeats: int = 3) -> float:
    fn()  # warm-up
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return float(np.median(timings))


def test_print_topk_early_exit(tmp_path):
    """Cold disk top-k fetches at most 25% of the surviving blocks."""
    n_rows = topk_rows()
    table, relation = _clustered_relation(n_rows)
    path = tmp_path / "clustered.corra"
    write_table(str(path), relation)

    # Serial sort-everything reference over the raw values.
    raw = np.asarray(table.column("ts"), dtype=np.int64)
    print()
    for descending in (False, True):
        expected = np.sort(raw)[::-1][:TOP_K] if descending else np.sort(raw)[:TOP_K]
        disk = DiskRelation(str(path), prefetch_workers=0)  # cold: fresh cache
        result = (
            disk.query(config=EngineConfig(workers=1))
            .select("ts")
            .order_by("ts", desc=descending)
            .limit(TOP_K)
            .execute()
        )
        assert list(result.columns["ts"]) == expected.tolist()
        metrics = result.metrics
        visited = metrics.blocks_scanned + metrics.blocks_full
        fraction = visited / metrics.n_blocks
        io = disk.io
        direction = "desc" if descending else "asc"
        print(
            f"top-{TOP_K} {direction:<4} over {n_rows:,} clustered rows: "
            f"visited {visited}/{metrics.n_blocks} blocks ({fraction:.1%}), "
            f"{io.columns_read} column segment(s) read, "
            f"{io.column_bytes_read:,} bytes"
        )
        assert fraction <= 0.25, (
            f"top-k visited {fraction:.1%} of blocks; early exit is not engaging"
        )


def _skewed_relation(n_blocks: int = 16, block_size: int = 2048):
    """First 3/4 of the blocks are trivial, the last 1/4 carry the compute."""
    light = (3 * n_blocks // 4) * block_size
    heavy = n_blocks * block_size - light
    marker = np.concatenate([
        np.zeros(light, dtype=np.int64),
        np.ones(heavy, dtype=np.int64),
    ])
    table = Table.from_columns([("m", INT64, marker)])
    return TableCompressor(block_size=block_size).compress(table)


def _skewed_predicate(spins: int = 120):
    """All rows match; heavy blocks pay a real (GIL-releasing) numpy cost."""

    def condition(values):
        if values.max(initial=0) > 0:
            acc = values.astype(np.float64)
            for _ in range(spins):
                acc = np.sqrt(acc + 1.0)
        return values >= 0

    return ColumnPredicate("m", condition, description="m >= 0 (skewed cost)")


def test_print_steal_speedup():
    """Work stealing rebalances a skewed deal: >= 1.5x at 4 workers."""
    workers = steal_workers()
    relation = _skewed_relation()
    predicate = _skewed_predicate()

    serial = ParallelEngine(relation, workers=1)
    reference, _ = serial.scan(predicate)
    serial.close()

    results = {}
    timings = {}
    for label, stealing in (("stealing", True), ("fixed fan-out", False)):
        engine = ParallelEngine(relation, workers=workers, stealing=stealing)
        try:
            row_ids, metrics = engine.scan(predicate)
            results[label] = (row_ids, metrics)
            timings[label] = _time(lambda: engine.scan(predicate))
        finally:
            engine.close()

    for label, (row_ids, _) in results.items():
        assert np.array_equal(row_ids, reference), f"{label} changed the result"
    stolen = results["stealing"][1].morsels_stolen
    assert results["fixed fan-out"][1].morsels_stolen == 0

    speedup = timings["fixed fan-out"] / timings["stealing"]
    print()
    print(
        f"skewed scan at {workers} workers: fixed fan-out "
        f"{timings['fixed fan-out'] * 1e3:.1f} ms, stealing "
        f"{timings['stealing'] * 1e3:.1f} ms ({speedup:.2f}x, "
        f"{stolen} morsel(s) stolen)"
    )
    assert stolen >= 1, "the skewed deal did not trigger a single steal"
    cores = os.cpu_count() or 1
    if cores >= 4 and workers >= 4:
        assert speedup >= 1.5, (
            f"stealing speedup {speedup:.2f}x below the 1.5x acceptance target"
        )
    else:
        pytest.skip(f"speedup assertion needs >= 4 cores/workers (have {cores}/{workers})")
