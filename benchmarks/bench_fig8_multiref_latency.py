"""Benchmark for Figure 8: latency ratio for multi-reference encoding (Taxi).

Reconstructing ``total_amount`` touches all eight reference columns, so the
slowdown over the single-column baseline is markedly higher than in the
single-reference case; the paper reports it stabilising around 2x as
selectivity (and data locality) grows.
"""

from __future__ import annotations

import pytest

from _bench_config import latency_vectors
from repro.query import (
    PAPER_SELECTIVITIES,
    generate_selection_vectors,
    latency_ratio,
    materialize_columns,
    sweep_query_latency,
)


@pytest.mark.parametrize("selectivity", [0.005, 0.05, 0.5])
def test_corra_total_amount(benchmark, taxi_latency_relations, selectivity):
    _, corra = taxi_latency_relations
    vector = generate_selection_vectors(corra.n_rows, selectivity, 1, seed=31)[0]
    benchmark(materialize_columns, corra, ["total_amount"], vector)


@pytest.mark.parametrize("selectivity", [0.005, 0.05, 0.5])
def test_baseline_total_amount(benchmark, taxi_latency_relations, selectivity):
    baseline, _ = taxi_latency_relations
    vector = generate_selection_vectors(baseline.n_rows, selectivity, 1, seed=31)[0]
    benchmark(materialize_columns, baseline, ["total_amount"], vector)


def test_print_figure8_ratios(taxi_latency_relations):
    """Print the ratio series of Fig. 8 and sanity-check its shape."""
    baseline, corra = taxi_latency_relations
    n_vectors = latency_vectors()
    ours = sweep_query_latency(corra, ["total_amount"], PAPER_SELECTIVITIES, n_vectors)
    base = sweep_query_latency(baseline, ["total_amount"], PAPER_SELECTIVITIES, n_vectors)
    ratios = latency_ratio(ours, base)
    print()
    print("[figure8] " + ", ".join(f"{s}:{r:.2f}x" for s, r in ratios.items()))
    # Reconstruction is clearly more expensive than a single-column fetch...
    assert all(r > 1.0 for r in ratios.values())
    # ...but bounded (the paper stabilises around 2x; pure-Python overheads
    # land in the same few-x range rather than orders of magnitude).
    assert max(ratios.values()) < 20.0
