"""Benchmark for the lazy plan API's aggregation pushdown.

Three trajectories are recorded:

* **stat-answered aggregates** — ``count``/``sum``/``min``/``max`` over a
  *sorted* relation at low selectivities.  The zone maps prune or fully
  cover every block, so the stats path answers from per-block metadata; the
  baseline is the same lazy query with ``use_statistics=False``
  (decode-and-reduce over every block).  The acceptance target is **>= 10x**
  at <= 10% selectivity, with zero rows decoded or gathered on the
  block-aligned point.
* **group-by in code space** — group-by over a dictionary-encoded string
  column with aggregation per group.  The code-space path must report at
  most one string-heap decode per distinct group
  (``ScanMetrics.string_heap_decodes <= n_groups``) and beat the
  decode-then-group baseline (``use_dictionary=False``).
* **workers** — the same aggregate at each configured worker count, results
  asserted identical (the CI smoke job pins ``--workers`` to 1,2).

Row count comes from ``CORRA_BENCH_AGG_ROWS`` (default 200,000 — laptop
scale, same convention as the other benchmarks); worker counts from
``CORRA_BENCH_AGG_WORKERS`` (default ``1,2``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import TableCompressor
from repro.dtypes import INT64, STRING
from repro.query import Between, Count, Max, Min, Sum
from repro.storage.table import Table

N_BLOCKS = 16


def aggregate_rows() -> int:
    return int(os.environ.get("CORRA_BENCH_AGG_ROWS", "200000"))


def worker_counts() -> tuple[int, ...]:
    spec = os.environ.get("CORRA_BENCH_AGG_WORKERS", "1,2")
    return tuple(int(part) for part in spec.split(",") if part)


def _sorted_table(n_rows: int, seed: int = 42) -> Table:
    """A sorted date column (prunable) plus an unsorted fare and a tag."""
    rng = np.random.default_rng(seed)
    categories = [f"cat_{i:03d}" for i in range(64)]
    return Table.from_columns([
        ("ship", INT64, np.arange(n_rows, dtype=np.int64) + 8_000),
        ("fare", INT64, rng.integers(0, 10_000, n_rows)),
        ("tag", STRING, [categories[i] for i in rng.integers(0, len(categories), n_rows)]),
    ])


@pytest.fixture(scope="module")
def sorted_relation():
    n_rows = aggregate_rows()
    table = _sorted_table(n_rows)
    block_size = max(1, -(-n_rows // N_BLOCKS))
    return TableCompressor(block_size=block_size).compress(table), table


def _time(fn, repeats: int = 5) -> float:
    fn()  # warm-up
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return float(np.median(timings))


def _agg_query(relation, low, high, **options):
    return (
        relation.query(**options)
        .where(Between("ship", low, high))
        .agg(n=Count(), total=Sum("fare"), lo=Min("fare"), hi=Max("fare"))
    )


class TestAggregateLatency:
    @pytest.mark.parametrize("use_statistics", (True, False))
    def test_aggregate_at_one_block(self, benchmark, sorted_relation, use_statistics):
        relation, _ = sorted_relation
        high = 8_000 + relation.block_size - 1  # exactly the first block
        query = _agg_query(relation, 8_000, high, use_statistics=use_statistics)
        benchmark(query.execute)


def test_print_stat_answered_aggregate_trajectory(sorted_relation):
    """Record stat-answered aggregation vs decode-and-reduce per selectivity."""
    relation, table = sorted_relation
    n_rows = relation.n_rows
    fare = table.column("fare")
    ship = table.column("ship")

    print()
    speedup_at_aligned = None
    points = [
        ("1%", 8_000, 8_000 + max(n_rows // 100, 1) - 1, False),
        # One whole block (1/16 = 6.25% <= 10%): every touched block is
        # fully covered, so the stats path decodes nothing at all.
        ("1 block (6.2%)", 8_000, 8_000 + relation.block_size - 1, True),
        ("10%", 8_000, 8_000 + n_rows // 10 - 1, False),
    ]
    for label, low, high, aligned in points:
        mask = (ship >= low) & (ship <= high)
        expected = {
            "n": int(np.count_nonzero(mask)),
            "total": int(np.sum(fare[mask], dtype=np.int64)),
            "lo": int(fare[mask].min()),
            "hi": int(fare[mask].max()),
        }
        stats_query = _agg_query(relation, low, high)
        baseline_query = _agg_query(relation, low, high, use_statistics=False)
        stats_result = stats_query.execute()
        baseline_result = baseline_query.execute()
        for name, value in expected.items():
            assert stats_result.scalar(name) == value
            assert baseline_result.scalar(name) == value

        stats_seconds = _time(lambda: stats_query.execute())
        baseline_seconds = _time(lambda: baseline_query.execute())
        speedup = baseline_seconds / max(stats_seconds, 1e-9)
        metrics = stats_result.metrics
        print(
            f"[aggregate] {label:>14}: {stats_seconds * 1e3:7.2f} ms stat-answered vs "
            f"{baseline_seconds * 1e3:7.2f} ms decode-and-reduce ({speedup:5.1f}x); "
            f"{metrics.blocks_pruned}/{metrics.blocks_full}/{metrics.blocks_scanned} "
            f"blocks pruned/full/scanned, {metrics.rows_decoded:,} rows decoded, "
            f"{metrics.rows_gathered:,} gathered"
        )
        if aligned:
            speedup_at_aligned = speedup
            assert metrics.rows_decoded == 0
            assert metrics.rows_gathered == 0
            assert metrics.blocks_scanned == 0

    # Acceptance: stat-answered aggregation >= 10x over decode-and-reduce on
    # sorted data at <= 10% selectivity.
    assert speedup_at_aligned is not None
    assert speedup_at_aligned >= 10.0, (
        f"expected >= 10x for stat-answered aggregates, got {speedup_at_aligned:.1f}x"
    )


def test_print_group_by_code_space_trajectory(sorted_relation):
    """Record dictionary-domain group-by vs decode-then-group."""
    relation, table = sorted_relation
    assert relation.block(0).encoding_of("tag") == "dictionary"
    n_groups = len(set(table.column("tag")))

    code_query = relation.query().group_by("tag").agg(n=Count(), total=Sum("fare"))
    decode_query = (
        relation.query(use_dictionary=False).group_by("tag").agg(n=Count(), total=Sum("fare"))
    )
    code_result = code_query.execute()
    decode_result = decode_query.execute()
    assert code_result.columns == decode_result.columns
    assert len(code_result.column("tag")) == n_groups
    # One heap decode per distinct group on the code-space path ...
    assert code_result.metrics.string_heap_decodes <= n_groups
    # ... while decode-then-group materialises the tag of every row.
    assert decode_result.metrics.string_heap_decodes == relation.n_rows

    code_seconds = _time(lambda: code_query.execute())
    decode_seconds = _time(lambda: decode_query.execute())
    print()
    print(
        f"[group-by] {n_groups} groups over {relation.n_rows:,} rows: "
        f"{code_seconds * 1e3:.2f} ms code-space "
        f"({code_result.metrics.string_heap_decodes} heap decodes) vs "
        f"{decode_seconds * 1e3:.2f} ms decode-then-group "
        f"({decode_result.metrics.string_heap_decodes:,} heap decodes), "
        f"{decode_seconds / max(code_seconds, 1e-9):.1f}x"
    )


def test_print_aggregate_workers_trajectory(sorted_relation):
    """Record the unsorted-range aggregate at each worker count."""
    relation, _ = sorted_relation
    n_rows = relation.n_rows
    # An 80% range: most blocks full, boundary blocks scanned; the gathered
    # reduction is the part the workers parallelise.
    low, high = 8_000 + n_rows // 10, 8_000 + (n_rows * 9) // 10
    reference = _agg_query(relation, low, high).execute()

    print()
    for workers in worker_counts():
        query = _agg_query(relation, low, high, workers=workers)
        result = query.execute()
        for name in ("n", "total", "lo", "hi"):
            assert result.scalar(name) == reference.scalar(name)
        seconds = _time(lambda: query.execute())
        print(
            f"[aggregate-workers] workers={workers}: {seconds * 1e3:7.2f} ms "
            f"({relation.n_rows / seconds / 1e6:.1f}M rows/s)"
        )
