"""Benchmark for Figure 7: absolute latency zoom-in, hierarchical encoding.

Same structure as Fig. 6 but for the LDBC (countryid, ip) pair: the paper's
point is that hierarchical decoding pays an extra (un-prefetchable) lookup
into the group-values array, so — unlike non-hierarchical encoding — the
overhead is not fully hidden even when both columns are queried.
"""

from __future__ import annotations

import pytest

from _bench_config import latency_vectors
from repro.query import (
    PAPER_ZOOM_SELECTIVITIES,
    generate_selection_vectors,
    materialize_columns,
    sweep_query_latency,
)

CONFIGURATIONS = ("uncompressed", "single_column", "corra")


def _relation(relations, configuration):
    baseline, corra, uncompressed = relations
    return {
        "uncompressed": uncompressed,
        "single_column": baseline,
        "corra": corra,
    }[configuration]


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@pytest.mark.parametrize("selectivity", [0.005, 0.1])
def test_diff_encoded_column(benchmark, ldbc_latency_relations, configuration, selectivity):
    relation = _relation(ldbc_latency_relations, configuration)
    vector = generate_selection_vectors(relation.n_rows, selectivity, 1, seed=29)[0]
    benchmark(materialize_columns, relation, ["ip"], vector)


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@pytest.mark.parametrize("selectivity", [0.005, 0.1])
def test_both_columns(benchmark, ldbc_latency_relations, configuration, selectivity):
    relation = _relation(ldbc_latency_relations, configuration)
    vector = generate_selection_vectors(relation.n_rows, selectivity, 1, seed=29)[0]
    benchmark(materialize_columns, relation, ["countryid", "ip"], vector)


def test_print_figure7(ldbc_latency_relations):
    """Print the absolute-latency bars of Fig. 7 for all three configurations."""
    baseline, corra, uncompressed = ldbc_latency_relations
    n_vectors = latency_vectors()
    print()
    for query_label, columns in (
        ("diff-enc. column", ["ip"]),
        ("both columns", ["countryid", "ip"]),
    ):
        for config_label, relation in (
            ("Uncompressed", uncompressed),
            ("Single-column compression", baseline),
            ("Hierarchical encoding (ours)", corra),
        ):
            sweep = sweep_query_latency(
                relation, columns, PAPER_ZOOM_SELECTIVITIES, n_vectors
            )
            rendered = ", ".join(
                f"{s}:{sweep.measurement(s).mean_milliseconds():.2f}ms"
                for s in sweep.selectivities
            )
            print(f"[figure7] {query_label} / {config_label}: {rendered}")
    assert True
