"""Benchmark for Figure 5: query latency ratio over the single-column baseline.

Four series, as in the paper: {non-hierarchical, hierarchical} x {query on the
diff-encoded column only, query on both columns}, swept over the paper's
selectivities.  The timed benchmark targets are the individual materialisation
calls; the ratio series is printed by the final reporting test.
"""

from __future__ import annotations

import pytest

from _bench_config import latency_vectors
from repro.query import (
    PAPER_SELECTIVITIES,
    generate_selection_vectors,
    latency_ratio,
    materialize_columns,
    sweep_query_latency,
)


def _vector(relation, selectivity):
    return generate_selection_vectors(relation.n_rows, selectivity, 1, seed=11)[0]


class TestNonHierarchicalMaterialisation:
    """Fig. 5 left panels: TPC-H (l_shipdate, l_receiptdate)."""

    @pytest.mark.parametrize("selectivity", [0.01, 0.1, 1.0])
    def test_diff_encoded_column(self, benchmark, tpch_latency_relations, selectivity):
        _, corra, _ = tpch_latency_relations
        vector = _vector(corra, selectivity)
        benchmark(materialize_columns, corra, ["l_receiptdate"], vector)

    @pytest.mark.parametrize("selectivity", [0.01, 0.1, 1.0])
    def test_both_columns(self, benchmark, tpch_latency_relations, selectivity):
        _, corra, _ = tpch_latency_relations
        vector = _vector(corra, selectivity)
        benchmark(
            materialize_columns, corra, ["l_shipdate", "l_receiptdate"], vector
        )

    @pytest.mark.parametrize("selectivity", [0.01, 0.1, 1.0])
    def test_baseline_diff_encoded_column(self, benchmark, tpch_latency_relations, selectivity):
        baseline, _, _ = tpch_latency_relations
        vector = _vector(baseline, selectivity)
        benchmark(materialize_columns, baseline, ["l_receiptdate"], vector)


class TestHierarchicalMaterialisation:
    """Fig. 5 right panels: LDBC (countryid, ip)."""

    @pytest.mark.parametrize("selectivity", [0.01, 0.1])
    def test_diff_encoded_column(self, benchmark, ldbc_latency_relations, selectivity):
        _, corra, _ = ldbc_latency_relations
        vector = _vector(corra, selectivity)
        benchmark(materialize_columns, corra, ["ip"], vector)

    @pytest.mark.parametrize("selectivity", [0.01, 0.1])
    def test_both_columns(self, benchmark, ldbc_latency_relations, selectivity):
        _, corra, _ = ldbc_latency_relations
        vector = _vector(corra, selectivity)
        benchmark(materialize_columns, corra, ["countryid", "ip"], vector)

    @pytest.mark.parametrize("selectivity", [0.01, 0.1])
    def test_baseline_diff_encoded_column(self, benchmark, ldbc_latency_relations, selectivity):
        baseline, _, _ = ldbc_latency_relations
        vector = _vector(baseline, selectivity)
        benchmark(materialize_columns, baseline, ["ip"], vector)


def test_print_figure5_ratios(tpch_latency_relations, ldbc_latency_relations):
    """Print the full ratio series and sanity-check its shape against the paper."""
    n_vectors = latency_vectors()
    print()
    series = (
        (
            "non-hierarchical",
            tpch_latency_relations,
            ["l_receiptdate"],
            ["l_shipdate", "l_receiptdate"],
        ),
        ("hierarchical", ldbc_latency_relations, ["ip"], ["countryid", "ip"]),
    )
    for name, (baseline, corra, _), diff_columns, both_columns in series:
        for label, columns in (
            ("diff-encoded column", diff_columns),
            ("both columns", both_columns),
        ):
            ours = sweep_query_latency(corra, columns, PAPER_SELECTIVITIES, n_vectors)
            base = sweep_query_latency(baseline, columns, PAPER_SELECTIVITIES, n_vectors)
            ratios = latency_ratio(ours, base)
            rendered = ", ".join(f"{s}:{r:.2f}x" for s, r in ratios.items())
            print(f"[figure5] {name} / {label}: {rendered}")
            # Shape checks: overhead bounded, and querying both columns costs
            # at most about as much as querying the diff-encoded column alone.
            assert max(ratios.values()) < 4.0
            if label == "both columns":
                assert min(ratios.values()) < 1.5
