"""Benchmark for Table 2: space saving over single-column encoding schemes.

Each benchmark times one row of Table 2 (encoding the diff-encoded column
with its Corra scheme) and asserts that the measured saving rate over the
best single-column baseline reproduces the paper's direction and rough
magnitude.  The full reproduced table is printed once at the end of the
module so a ``--benchmark-only`` run also shows the paper-style rows.
"""

from __future__ import annotations

import pytest

from _bench_config import bench_rows
from repro.baselines import SingleColumnBaseline
from repro.bench import compression_table2
from repro.core import (
    HierarchicalEncoding,
    MultiReferenceEncoding,
    NonHierarchicalEncoding,
)
from repro.datasets import taxi_multi_reference_config


def _saving(baseline_bytes: int, corra_bytes: int) -> float:
    return 1.0 - corra_bytes / baseline_bytes


def _baseline(table, column):
    return SingleColumnBaseline().select_column(table, column).size_bytes


class TestTable2NonHierarchical:
    def test_lineitem_receiptdate(self, benchmark, tpch_dates):
        """Row 1: l_receiptdate w.r.t. l_shipdate (paper: 58.3 %)."""
        baseline = _baseline(tpch_dates, "l_receiptdate")
        encoder = NonHierarchicalEncoding()
        column = benchmark(
            encoder.encode,
            tpch_dates.column("l_receiptdate"),
            tpch_dates.column("l_shipdate"),
            "l_shipdate",
        )
        assert _saving(baseline, column.size_bytes) == pytest.approx(0.583, abs=0.02)

    def test_lineitem_commitdate(self, benchmark, tpch_dates):
        """Row 2: l_commitdate w.r.t. l_shipdate (paper: 33.3 %)."""
        baseline = _baseline(tpch_dates, "l_commitdate")
        encoder = NonHierarchicalEncoding()
        column = benchmark(
            encoder.encode,
            tpch_dates.column("l_commitdate"),
            tpch_dates.column("l_shipdate"),
            "l_shipdate",
        )
        assert _saving(baseline, column.size_bytes) == pytest.approx(0.333, abs=0.02)

    def test_taxi_dropoff(self, benchmark, taxi):
        """Row 3: dropoff w.r.t. pickup (paper: 30.6 %)."""
        baseline = _baseline(taxi, "dropoff")
        encoder = NonHierarchicalEncoding()
        column = benchmark(
            encoder.encode, taxi.column("dropoff"), taxi.column("pickup"), "pickup"
        )
        assert _saving(baseline, column.size_bytes) == pytest.approx(0.306, abs=0.08)


class TestTable2Hierarchical:
    def test_dmv_zip_code(self, benchmark, dmv):
        """Row 4: zip_code grouped by city (paper: 53.7 %)."""
        baseline = _baseline(dmv, "zip_code")
        encoder = HierarchicalEncoding()
        column = benchmark(
            encoder.encode, dmv.column("zip_code"), dmv.column("city"), "city"
        )
        saving = _saving(baseline, column.size_bytes)
        assert 0.30 < saving < 0.70

    def test_dmv_city(self, benchmark, dmv):
        """Row 5: city grouped by state (paper: 1.8 % — essentially no saving)."""
        baseline = _baseline(dmv, "city")
        encoder = HierarchicalEncoding()
        column = benchmark(
            encoder.encode, dmv.column("city"), dmv.column("state"), "state"
        )
        assert abs(_saving(baseline, column.size_bytes)) < 0.10

    def test_message_ip(self, benchmark, ldbc):
        """Row 6: ip grouped by countryid (paper: 17.1 %)."""
        baseline = _baseline(ldbc, "ip")
        encoder = HierarchicalEncoding()
        column = benchmark(
            encoder.encode, ldbc.column("ip"), ldbc.column("countryid"), "countryid"
        )
        saving = _saving(baseline, column.size_bytes)
        assert 0.05 < saving < 0.35


class TestTable2MultiReference:
    def test_taxi_total_amount(self, benchmark, taxi_monetary):
        """Row 7: total_amount w.r.t. groups A/B/C (paper: 85.16 %)."""
        config = taxi_multi_reference_config()
        references = {
            name: taxi_monetary.column(name) for name in config.reference_columns
        }
        baseline = _baseline(taxi_monetary, "total_amount")
        encoder = MultiReferenceEncoding(config)
        column = benchmark(
            encoder.encode, taxi_monetary.column("total_amount"), references
        )
        assert _saving(baseline, column.size_bytes) == pytest.approx(0.8516, abs=0.06)


def test_print_full_table2():
    """Regenerate and print the complete Table 2 (not a timed benchmark)."""
    result = compression_table2(n_rows=min(bench_rows(), 300_000))
    print()
    print(result.render())
    assert len(result.rows) == 7
